"""Rainflow cycle counting for battery SoC histories.

The paper reports "battery cycles" per candidate composition (Tables 1–2)
and proposes battery-degradation minimization as an optimization objective
(§4.3).  Two complementary counters:

* :func:`count_equivalent_full_cycles` — throughput-based equivalent full
  cycles (EFC): total discharged energy divided by usable capacity.  This
  is the metric the tables report (a 7.5 MWh unit that discharges
  1 147 MWh over a year has seen ~153 EFC).
* :func:`rainflow_cycles` — the ASTM E1049-85 rainflow algorithm over the
  SoC trace, yielding individual (depth, mean) half/full cycles for use
  with depth-dependent aging laws (Wöhler curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RainflowCycle:
    """One counted cycle: depth and mean are SoC fractions in [0, 1]."""

    depth: float
    mean: float
    count: float  # 1.0 = full cycle, 0.5 = half cycle


def _turning_points(series: np.ndarray) -> np.ndarray:
    """Compress a series to its local extrema (keeping endpoints)."""
    x = np.asarray(series, dtype=np.float64)
    if x.size <= 2:
        return x
    diff = np.diff(x)
    # Drop zero-slope plateaus, then keep sign changes.
    keep = np.ones(x.size, dtype=bool)
    keep[1:-1] = np.sign(diff[:-1]) != np.sign(diff[1:])
    # Plateaus produce sign 0; treat them as continuation (drop midpoints).
    flat = np.zeros(x.size, dtype=bool)
    flat[1:-1] = (diff[:-1] == 0) & (diff[1:] == 0)
    keep &= ~flat
    return x[keep]


def rainflow_cycles(soc_series: np.ndarray) -> list[RainflowCycle]:
    """ASTM E1049-85 rainflow counting over a SoC trace.

    Returns a list of :class:`RainflowCycle`; residual excursions are
    counted as half cycles, matching the standard.
    """
    pts = _turning_points(np.asarray(soc_series, dtype=np.float64))
    cycles: list[RainflowCycle] = []
    stack: list[float] = []
    for point in pts:
        stack.append(float(point))
        while len(stack) >= 3:
            x = abs(stack[-2] - stack[-1])
            y = abs(stack[-3] - stack[-2])
            if x < y:
                break
            if len(stack) == 3:
                # Half cycle from the bottom of the stack.
                cycles.append(
                    RainflowCycle(depth=y, mean=(stack[0] + stack[1]) / 2.0, count=0.5)
                )
                stack.pop(0)
            else:
                cycles.append(
                    RainflowCycle(depth=y, mean=(stack[-3] + stack[-2]) / 2.0, count=1.0)
                )
                del stack[-3:-1]
    # Residual: count remaining ranges as half cycles.
    for a, b in zip(stack, stack[1:]):
        cycles.append(RainflowCycle(depth=abs(b - a), mean=(a + b) / 2.0, count=0.5))
    return [c for c in cycles if c.depth > 0.0]


def count_equivalent_full_cycles(
    discharge_energy_wh: float, usable_capacity_wh: float
) -> float:
    """Equivalent full cycles from total discharge throughput."""
    if usable_capacity_wh <= 0:
        return 0.0
    return float(discharge_energy_wh / usable_capacity_wh)


def equivalent_full_cycles_from_soc(
    soc_series: np.ndarray, usable_fraction: float = 1.0
) -> float:
    """EFC computed from a SoC trace (sum of downward SoC movement)."""
    soc = np.asarray(soc_series, dtype=np.float64)
    if soc.size < 2 or usable_fraction <= 0:
        return 0.0
    drops = np.clip(-np.diff(soc), 0.0, None)
    return float(drops.sum() / usable_fraction)
