#!/usr/bin/env python
"""Hydra-style config-driven sweeps (paper §3.3 "Implementation").

The paper drives its experiments through YAML configs with a sweeper
that fans out across compute nodes.  This example shows the equivalent
workflow:

1. write a base YAML config and load it,
2. apply command-line-style overrides,
3. grid-sweep it over sites and operating strategies (parallelizable
   through the multiprocessing launcher),
4. run a black-box (NSGA-II) sweep over the composition space driven by
   the same config.
"""

import tempfile
from pathlib import Path

from repro.blackbox import NSGA2Sampler, create_study
from repro.blackbox.distributions import IntDistribution
from repro.confsys import (
    BlackboxSweeper,
    Config,
    GridSweeper,
    SerialLauncher,
    apply_overrides,
    load_config,
    save_config,
)
from repro.confsys.sweeper import SweepJob
from repro.core import MicrogridComposition, BatchEvaluator, build_scenario

BASE_CONFIG = {
    "scenario": {"location": "houston", "year": 2024},
    "composition": {"n_turbines": 3, "solar_increments": 2, "battery_units": 3},
    "objectives": ["operational", "embodied"],
}


def evaluate_job(job: SweepJob) -> dict:
    """One sweep job: simulate the configured composition at the site."""
    cfg = job.config
    scenario = build_scenario(cfg.scenario.location, year_label=cfg.scenario.year)
    comp = MicrogridComposition(
        n_turbines=cfg.composition.n_turbines,
        solar_kw=cfg.composition.solar_increments * 4_000.0,
        battery_units=cfg.composition.battery_units,
    )
    e = BatchEvaluator(scenario).evaluate_one(comp)
    return {
        "site": cfg.scenario.location,
        "composition": comp.label(),
        "operational_tco2_day": round(e.operational_tco2_per_day, 2),
        "coverage_pct": round(e.metrics.coverage * 100, 1),
    }


def main() -> None:
    # 1. YAML round trip, as the paper's configs are YAML files.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "experiment.yaml"
        save_config(Config(BASE_CONFIG), path)
        cfg = load_config(path)

    # 2. Hydra-style overrides.
    cfg = apply_overrides(cfg, ["composition.battery_units=4", "+tag=demo"])
    print("resolved config:", cfg.flat())

    # 3. Grid sweep over sites × battery sizes.
    sweeper = GridSweeper(
        cfg,
        {"scenario.location": ["houston", "berkeley"], "composition.battery_units": [0, 4]},
    )
    print(f"\ngrid sweep: {len(sweeper)} jobs")
    for row in SerialLauncher().launch(evaluate_job, sweeper.jobs()):
        print("  ", row)

    # 4. Black-box sweep: NSGA-II proposes composition configs.
    scenario = build_scenario("houston")
    evaluator = BatchEvaluator(scenario)

    def objective(config: Config):
        comp = MicrogridComposition(
            n_turbines=config.composition.n_turbines,
            solar_kw=config.composition.solar_increments * 4_000.0,
            battery_units=config.composition.battery_units,
        )
        e = evaluator.evaluate_one(comp)
        return e.objectives(("operational", "embodied"))

    study = create_study(
        directions=["minimize", "minimize"],
        sampler=NSGA2Sampler(population_size=16, seed=0),
    )
    BlackboxSweeper(
        cfg,
        {
            "composition.n_turbines": IntDistribution(0, 10),
            "composition.solar_increments": IntDistribution(0, 10),
            "composition.battery_units": IntDistribution(0, 8),
        },
        study,
    ).run(objective, n_trials=64)
    unique = {tuple(sorted(t.params.items())): t for t in study.best_trials}
    print(f"\nblack-box sweep: {len(unique)} distinct Pareto-optimal configs found")
    for trial in sorted(unique.values(), key=lambda t: t.values[1])[:5]:
        print(f"   params {trial.params}  →  (operational, embodied) = "
              f"({trial.values[0]:.2f} tCO2/d, {trial.values[1]:,.0f} tCO2)")


if __name__ == "__main__":
    main()
