#!/usr/bin/env python
"""Risk-aware sizing over a scenario ensemble (DESIGN.md §6).

Crosses five synthetic weather years with two dunkelflaute-severity
futures into a 10-member ensemble, scores a Houston shortlist against
all members in **one stacked time loop**, and compares the
expected-value ranking (``mean``) with the risk-aware ranking
(``cvar:0.25`` — mean of the worst quartile of members).

The point of the exercise is the **ranking flip**: deep-battery designs
flatter the *average* future (they time-shift surplus on ordinary
days), but a severe multi-day dark doldrum outlasts any battery — in
the worst quartile the robust pick swings toward generation overbuild,
which still produces *something* through an attenuated week while an
exhausted battery produces nothing.  Sizing by the mean therefore
mis-ranks exactly the designs that differ in tail exposure.
Everything is seeded and offline; the same search at scale is
``repro study run --ensemble years=2020-2029,severity=1.0:1.8
--aggregate cvar:0.25``.
"""

from repro import MicrogridComposition
from repro.core.ensemble import EnsembleSpec, build_ensemble, evaluate_ensemble

#: (wind MW, solar MW, battery MWh) — deliberately mixes "modest
#: generation, deep battery" designs (great average, fragile tail) with
#: "overbuild generation, skimp on storage" designs (the other way
#: round), since that is the trade-off CVaR re-ranks.
SHORTLIST = [
    MicrogridComposition.from_mw(12.0, 0.0, 7.5),
    MicrogridComposition.from_mw(0.0, 36.0, 7.5),
    MicrogridComposition.from_mw(0.0, 12.0, 22.5),
    MicrogridComposition.from_mw(6.0, 36.0, 0.0),
    MicrogridComposition.from_mw(0.0, 16.0, 52.5),
    MicrogridComposition.from_mw(30.0, 40.0, 60.0),
]

#: 45-day horizon keeps this demo quick while spanning several events.
SPEC = EnsembleSpec.parse(
    "years=2020-2024,severity=1.0:1.8",
    sites=("houston",),
    n_hours=24 * 45,
)


def _ranking(aggregate: str, scenarios) -> list[tuple[float, MicrogridComposition]]:
    robust = evaluate_ensemble(scenarios, SHORTLIST, aggregate=aggregate)
    return sorted((r.operational_tco2_per_day, r.composition) for r in robust)


def main() -> None:
    scenarios = build_ensemble(SPEC)
    print(
        f"{len(scenarios)}-member ensemble (houston, "
        f"{len(SPEC.years)} weather years x {len(SPEC.severity)} severities):"
    )
    for sc in scenarios:
        print(f"   {sc.name}")

    by_mean = _ranking("mean", scenarios)
    by_cvar = _ranking("cvar:0.25", scenarios)

    print(f"\n{'rank':>4} {'by mean':>22} {'tCO2/d':>7}   {'by cvar:0.25':>22} {'tCO2/d':>7}")
    for i, ((m_val, m_comp), (c_val, c_comp)) in enumerate(zip(by_mean, by_cvar), 1):
        marker = "  <- flip" if m_comp != c_comp else ""
        print(
            f"{i:>4} {m_comp.label():>22} {m_val:>7.2f}   "
            f"{c_comp.label():>22} {c_val:>7.2f}{marker}"
        )

    flips = [
        i for i, (m, c) in enumerate(zip(by_mean, by_cvar), 1) if m[1] != c[1]
    ]
    if flips:
        print(
            f"\nranking flip at position(s) {flips}: the expected-value "
            "ranking and the worst-quartile ranking disagree — batteries "
            "carry ordinary days, but only generation overbuild survives "
            "a severe multi-day dark doldrum, so sizing by the mean "
            "mis-ranks the designs that differ in tail exposure."
        )
    else:
        print("\nno ranking flip at this horizon (try a full year).")


if __name__ == "__main__":
    main()
