#!/usr/bin/env python
"""Battery degradation analysis (paper §4.3: "battery degradation
minimization" as an optimization objective; §4.2: "batteries may require
replacement within 10–15 years").

For several Houston compositions this example:

1. extracts the battery's one-year SoC trajectory,
2. rainflow-counts it and applies the cycle+calendar aging model,
3. estimates years to end-of-life (80 % remaining capacity),
4. re-runs the 20-year projection *with* battery reinvestment at the
   estimated replacement interval — the refinement the paper's naive
   projection omits.
"""

from repro import MicrogridComposition, BatchEvaluator, build_scenario
from repro.core.projection import project_emissions
from repro.sam.batterymodels.degradation import DegradationModel
from repro.sam.batterymodels.rainflow import rainflow_cycles

COMPOSITIONS = [
    MicrogridComposition.from_mw(12.0, 0.0, 7.5),    # small, hard-working battery
    MicrogridComposition.from_mw(9.0, 8.0, 22.5),    # mid-size
    MicrogridComposition.from_mw(12.0, 12.0, 52.5),  # large, gently cycled
]


def main() -> None:
    scenario = build_scenario("houston")
    evaluator = BatchEvaluator(scenario)
    aging = DegradationModel()

    print(f"{'composition':>18} {'EFC/yr':>7} {'rainflow':>9} {'fade/yr':>8} "
          f"{'EOL yrs':>8} {'20y tCO2 (naive)':>17} {'20y tCO2 (+repl.)':>18}")
    for comp in COMPOSITIONS:
        evaluated = evaluator.evaluate_one(comp)
        soc = evaluator.soc_history(comp)
        cycles = rainflow_cycles(soc)
        annual_fade = aging.total_fade(soc, years=1.0)
        lifetime = aging.expected_lifetime_years(soc)

        naive = project_emissions(evaluated, horizon_years=20.0)
        with_repl = project_emissions(
            evaluated, horizon_years=20.0, battery_replacement_years=lifetime
        )
        print(
            f"{comp.label():>18} "
            f"{evaluated.metrics.battery_cycles:>7.0f} "
            f"{sum(c.count for c in cycles):>9.0f} "
            f"{annual_fade * 100:>7.2f}% "
            f"{lifetime:>8.1f} "
            f"{naive.total_tco2[-1]:>17,.0f} "
            f"{with_repl.total_tco2[-1]:>18,.0f}"
        )

    print(
        "\nSmaller batteries cycle deeper and more often, aging out sooner; "
        "reinvestment closes part of the gap the naive projection hides."
    )


if __name__ == "__main__":
    main()
