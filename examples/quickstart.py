#!/usr/bin/env python
"""Quickstart: size a microgrid for a data center in three steps.

1. Build a scenario (site resources + workload + grid carbon intensity).
2. Evaluate a few candidate compositions.
3. Run the multi-objective optimization and print the candidate table.

Runs in ~15 s on a laptop.
"""

from repro import (
    MicrogridComposition,
    BatchEvaluator,
    build_scenario,
    paper_candidates,
    run_exhaustive_search,
)
from repro.analysis import candidate_table, format_table


def main() -> None:
    # -- 1. a scenario: Berkeley data center, 1.62 MW mean load, CAISO grid
    scenario = build_scenario("berkeley")
    print(
        f"scenario '{scenario.name}': {scenario.n_steps} hourly steps, "
        f"mean load {scenario.workload.mean_power_w() / 1e6:.2f} MW, "
        f"grid CI {scenario.carbon.mean():.0f} gCO2/kWh"
    )

    # -- 2. evaluate hand-picked designs
    evaluator = BatchEvaluator(scenario)
    for wind_mw, solar_mw, battery_mwh in [(0, 0, 0.0), (3, 4, 22.5), (9, 12, 52.5)]:
        comp = MicrogridComposition.from_mw(wind_mw, solar_mw, battery_mwh)
        e = evaluator.evaluate_one(comp)
        print(
            f"  {comp.label():>15}: embodied {e.embodied_tonnes:>8,.0f} tCO2, "
            f"operational {e.operational_tco2_per_day:5.2f} tCO2/day, "
            f"coverage {e.metrics.coverage * 100:5.1f} %"
        )

    # -- 3. the full optimization: exhaustive sweep + candidate extraction
    result = run_exhaustive_search(scenario)
    candidates = paper_candidates(result.evaluated)
    print()
    print(format_table(candidate_table(candidates), title="Berkeley candidate solutions"))


if __name__ == "__main__":
    main()
