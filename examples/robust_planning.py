#!/usr/bin/env python
"""Robust long-term planning (library extensions beyond the paper).

The paper sizes against a single historical year and projects linearly.
This example stress-tests a shortlist of Houston candidates with:

1. **multi-year ensembles** — five synthetic weather years evaluated as
   one stacked 5-years × N-candidates time loop (DESIGN.md §6), ranking
   compositions by CVaR (mean of the worst quartile, via the unified
   ``repro.core.metrics`` reducers) instead of the single-year value —
   richer ensembles (growth/carbon/tariff/severity axes) are
   ``examples/ensemble_study.py``;
2. **sensitivity/tornado analysis** — how the baseline-vs-buildout
   crossover year moves when the grid decarbonizes or hardware
   footprints change;
3. **budget-pick stability** — whether the best-under-5 000 tCO2 choice
   survives ±25 % embodied-footprint uncertainty;
4. **hybrid storage** — adding a hydrogen-like long-duration tier behind
   the battery and measuring the reliability gain during the worst
   dark-doldrum week.
"""

import numpy as np

from repro import MicrogridComposition, BatchEvaluator, build_scenario
from repro.core.multiyear import evaluate_across_years, robust_ranking
from repro.core.sensitivity import (
    best_under_budget_stability,
    crossover_year_analytic,
    tornado,
)
from repro.core.study_runner import run_exhaustive_search
from repro.cosim import (
    Actor,
    CLCBattery,
    ConstantSignal,
    LongDurationStorage,
    Microgrid,
    StackedStorage,
    TraceSignal,
)
from repro.cosim.policy import IslandedPolicy
from repro.data.weather_events import dunkelflaute_events
from repro.timeseries import TimeSeries

SHORTLIST = [
    MicrogridComposition(0, 0.0, 0),
    MicrogridComposition.from_mw(12.0, 0.0, 7.5),
    MicrogridComposition.from_mw(9.0, 8.0, 22.5),
    MicrogridComposition.from_mw(12.0, 12.0, 52.5),
    MicrogridComposition.from_mw(30.0, 40.0, 60.0),
]


def main() -> None:
    # -- 1. multi-year robustness (one stacked 5×N time loop) ----------------
    print("1) five-weather-year ensemble (Houston, one stacked time loop):")
    outcomes = evaluate_across_years(
        "houston", SHORTLIST, year_labels=(2020, 2021, 2022, 2023, 2024)
    )
    print(f"{'composition':>16} {'op mean':>8} {'op worst':>9} {'CVaR25':>7} {'cov worst':>10}")
    for o in robust_ranking(outcomes):
        # cvar_operational delegates to the unified metrics reducer
        # (aggregate_values(values, "cvar:0.25"), DESIGN.md §6).
        print(
            f"{o.composition.label():>16} {o.operational_mean:>8.2f} "
            f"{o.operational_worst:>9.2f} {o.cvar_operational():>7.2f} "
            f"{o.coverage_worst * 100:>9.1f}%"
        )

    # -- 2. tornado on the crossover year ---------------------------------------
    scenario = build_scenario("houston")
    be = BatchEvaluator(scenario)
    baseline = be.evaluate_one(SHORTLIST[0])
    buildout = be.evaluate_one(SHORTLIST[-1])
    print("\n2) crossover-year sensitivity (baseline vs full build-out):")
    nominal = crossover_year_analytic(baseline, buildout)
    print(f"   nominal: {nominal:.1f} years")
    for res in tornado(baseline, buildout):
        lo, hi = res.values[0], res.values[-1]
        print(
            f"   {res.factor:>17}: x0.5 → {lo:5.1f} y   x1.5 → {hi:5.1f} y   "
            f"(swing {res.swing:.1f} y)"
        )

    # -- 3. budget-pick stability ---------------------------------------------
    result = run_exhaustive_search(scenario)
    picks = best_under_budget_stability(result.evaluated, budget_tco2=5_000.0)
    print("\n3) best-under-5,000 tCO2 pick vs embodied-footprint uncertainty:")
    for mult, comp in sorted(picks.items()):
        print(f"   footprints x{mult:>4.2f}: {comp.label()}")

    # -- 4. hybrid battery + hydrogen-like LDES during the worst doldrum -------
    events = dunkelflaute_events(scenario.location)
    worst = max(events, key=lambda e: e.duration_hours)
    comp = SHORTLIST[3]
    start_h = max(worst.start_hour - 12, 0)
    span_h = worst.duration_hours + 24

    def islanded_unserved(storage) -> float:
        gen = (
            scenario.solar_farm_profile_w(comp.solar_kw)
            + scenario.wind_farm_profile_w(comp.n_turbines)
        )[start_h : start_h + span_h]
        load = scenario.workload.power_w[start_h : start_h + span_h]
        mg = Microgrid(
            actors=[
                Actor("ren", TraceSignal(TimeSeries(gen, 3600.0))),
                Actor("dc", TraceSignal(TimeSeries(load, 3600.0)), is_consumer=True),
            ],
            storage=storage,
            policy=IslandedPolicy(),
        )
        unserved = 0.0
        for i in range(span_h):
            unserved += mg.step(i * 3600.0, 3600.0).unserved_w
        return unserved / 1e6  # MWh

    battery_only = CLCBattery(capacity_wh=comp.battery_wh, initial_soc=0.9)
    hybrid = StackedStorage(
        [
            CLCBattery(capacity_wh=comp.battery_wh, initial_soc=0.9),
            LongDurationStorage(
                capacity_wh=400e6, charge_power_w=2e6, discharge_power_w=2e6,
                initial_soc=0.8,
            ),
        ]
    )
    print(
        f"\n4) worst dunkelflaute ({worst.duration_hours} h): islanded unserved energy"
        f"\n   battery only          : {islanded_unserved(battery_only):7.1f} MWh"
        f"\n   battery + 400 MWh LDES: {islanded_unserved(hybrid):7.1f} MWh"
    )


if __name__ == "__main__":
    main()
