#!/usr/bin/env python
"""Operational strategies beyond sizing (paper §3.3/§4.3 extension).

The co-simulator supports operational strategies as pluggable policies
and controllers.  This example fixes one mid-size composition in Houston
and compares four operating modes over a full year:

* default greedy self-consumption (the paper's experiments),
* evening-window discharge (peak shaving against the TOU tariff),
* demand response (defer 20 % of load under high grid carbon intensity),
* islanded operation (reliability analysis: how often could the site
  run grid-independent?).

It closes with the vectorized policy engine (DESIGN.md §5): the same
strategy comparison — plus carbon-aware deferral and TOU arbitrage —
for *every* candidate in the paper's 1 089-point space at batch speed,
which used to require 1 089 co-simulations per policy.
"""

import time

from repro import MicrogridComposition, build_scenario
from repro.core.dispatch import POLICY_NAMES, make_policy
from repro.core.evaluator import CompositionEvaluator
from repro.core.fastsim import BatchEvaluator
from repro.core.parameterspace import PAPER_SPACE
from repro.cosim.controller import DeferrableLoadController
from repro.cosim.policy import IslandedPolicy, TimeWindowPolicy
from repro.cosim.signal import TraceSignal

COMPOSITION = MicrogridComposition.from_mw(9.0, 8.0, 22.5)


def main() -> None:
    scenario = build_scenario("houston")
    ci_signal = TraceSignal(scenario.carbon.as_timeseries(), name="carbon")
    print(f"composition {COMPOSITION.label()} at {scenario.name}\n")

    # -- default policy -----------------------------------------------------
    default_run = CompositionEvaluator(scenario).run(COMPOSITION)
    m = default_run.evaluated.metrics

    # -- evening-peak discharge window ---------------------------------------
    window_run = CompositionEvaluator(
        scenario, policy=TimeWindowPolicy(discharge_start_h=16.0, discharge_end_h=22.0)
    ).run(COMPOSITION)

    # -- demand response -------------------------------------------------------
    dr = DeferrableLoadController(
        consumer_name="datacenter",
        carbon_intensity=ci_signal,
        threshold_g_per_kwh=scenario.carbon.mean() * 1.2,
        deferrable_fraction=0.2,
    )
    dr_run = CompositionEvaluator(scenario, controllers=[dr]).run(COMPOSITION)

    # -- islanded reliability ---------------------------------------------------
    islanded_run = CompositionEvaluator(scenario, policy=IslandedPolicy()).run(COMPOSITION)
    unserved = islanded_run.evaluated.metrics.unserved_energy_wh
    demand = islanded_run.evaluated.metrics.demand_energy_wh

    rows = [
        ("default self-consumption", default_run),
        ("evening discharge window", window_run),
        ("demand response (20 %)", dr_run),
    ]
    print(f"{'strategy':<28} {'tCO2/day':>9} {'coverage':>9} {'cost $k':>8} {'cycles':>7}")
    for name, run in rows:
        metrics = run.evaluated.metrics
        cycles = metrics.battery_cycles or 0.0
        print(
            f"{name:<28} {metrics.operational_tco2_per_day:>9.2f} "
            f"{metrics.coverage * 100:>8.1f}% {metrics.electricity_cost_usd / 1e3:>8.0f} "
            f"{cycles:>7.0f}"
        )

    print(
        f"\nislanded feasibility: the microgrid alone would leave "
        f"{unserved / demand * 100:.1f} % of annual demand unserved "
        f"({islanded_run.evaluated.metrics.islanded_fraction * 100:.1f} % of hours fully independent)"
    )
    print(
        f"demand response deferred {dr.deferred_total_wh / 1e6:.0f} MWh into "
        f"cleaner hours (backlog at year end: {dr.backlog_wh / 1e3:.1f} kWh)"
    )

    # -- the same strategies, vectorized over the full candidate space -------
    comps = PAPER_SPACE.all_compositions()
    print(
        f"\nvectorized policy engine: best operational tCO2/day across all "
        f"{len(comps)} candidates"
    )
    for name in POLICY_NAMES:
        policy = make_policy(name, [scenario])
        start = time.perf_counter()
        evaluated = BatchEvaluator(scenario, policy=policy).evaluate(comps)
        elapsed = time.perf_counter() - start
        best = min(evaluated, key=lambda e: e.metrics.operational_tco2_per_day)
        print(
            f"  {name:>14}: best {best.metrics.operational_tco2_per_day:6.2f} tCO2/day "
            f"at {best.composition.label():<16} ({elapsed:5.2f} s for the sweep)"
        )


if __name__ == "__main__":
    main()
