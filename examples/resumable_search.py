#!/usr/bin/env python
"""Interrupt-and-resume a journaled NSGA-II composition search.

The paper's full co-simulated sweep takes >24 h — long enough that real
deployments must survive interruption.  This example shows the
persistence subsystem (DESIGN.md §3) end to end:

1. run a *reference* study to completion, journaling every trial;
2. run the same study again but "kill" it partway through (here: simply
   stop after a third of the trial budget — a real ``kill -9`` leaves
   the same journal, minus at most one torn line that replay skips);
3. resume from the journal with ``load_if_exists=True`` and verify the
   resumed study reaches the **identical** final Pareto front.

The same flow on the command line::

    repro study run    --journal study.jsonl --site houston --trials 350
    # <kill it>
    repro study status --journal study.jsonl
    repro study resume --journal study.jsonl

Runs in a few seconds (one-month scenario, reduced trial budget).
"""

import tempfile
from pathlib import Path

from repro import build_scenario
from repro.blackbox import JournalStorage, NSGA2Sampler
from repro.core.study_runner import OptimizationRunner

N_TRIALS = 120
POPULATION = 20
SEED = 42


def run_study(scenario, journal: Path, n_trials: int, resume: bool = False):
    """One (possibly partial, possibly resumed) journaled search."""
    runner = OptimizationRunner(scenario)
    return runner.run_blackbox(
        n_trials=n_trials,
        sampler=NSGA2Sampler(population_size=POPULATION, seed=SEED),
        storage=JournalStorage(journal),
        study_name="resumable-demo",
        load_if_exists=resume,
    )


def front_labels(result) -> list[str]:
    return sorted(e.composition.label() for e in result.front())


def main() -> None:
    scenario = build_scenario("houston", n_hours=24 * 30)
    workdir = Path(tempfile.mkdtemp(prefix="repro-resumable-"))

    # -- 1. the uninterrupted reference run
    reference = run_study(scenario, workdir / "reference.jsonl", N_TRIALS)
    print(
        f"reference:   {len(reference.study.trials)} trials, "
        f"front size {len(reference.front())}"
    )

    # -- 2. the "killed" run: only a third of the budget gets journaled
    journal = workdir / "interrupted.jsonl"
    partial = run_study(scenario, journal, N_TRIALS // 3)
    print(
        f"interrupted: {len(partial.study.trials)} trials journaled to "
        f"{journal.name}, then the process died"
    )

    # -- 3. resume from the journal and finish the remaining trials
    resumed = run_study(scenario, journal, N_TRIALS, resume=True)
    print(
        f"resumed:     {len(resumed.study.trials)} trials, "
        f"front size {len(resumed.front())}"
    )

    # -- the point: interruption did not change the outcome
    assert front_labels(resumed) == front_labels(reference)
    print("\nresumed Pareto front is identical to the uninterrupted run:")
    for label in front_labels(resumed):
        print(f"  (wind MW, solar MW, battery MWh) = {label}")


if __name__ == "__main__":
    main()
