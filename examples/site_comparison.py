#!/usr/bin/env python
"""The paper's §4 case study: Houston (ERCOT) vs Berkeley (CAISO).

Reproduces, for both sites:

* the Pareto front between embodied and operational emissions (Fig. 2),
* the candidate tables (Tables 1–2),
* the 20-year cumulative-emission projection with crossover analysis
  (Fig. 3),

and prints the site-to-site comparison the paper draws: Houston
decarbonizes wind-first, Berkeley solar-first; full on-site coverage is
not inherently optimal over a finite facility lifetime.
"""

from repro import build_scenario, paper_candidates, run_exhaustive_search
from repro.analysis import experiment_report
from repro.core.projection import crossover_year, project_many


def main() -> None:
    results, scenarios = {}, {}
    for site in ("houston", "berkeley"):
        scenarios[site] = build_scenario(site)
        results[site] = run_exhaustive_search(scenarios[site])
        print(experiment_report(site, results[site]))
        print()

    # Cross-site comparison (§4.1–4.2).
    print("=== cross-site comparison ===")
    for site, result in results.items():
        rows = paper_candidates(result.evaluated)
        early = rows[1]  # the ≤5 000 tCO2 pick
        # Compare by *energy* contribution, not nameplate: per-unit annual
        # energies come straight from the scenario's precomputed profiles.
        sc = scenarios[site]
        wind_mwh = sc.wind_farm_profile_w(early.composition.n_turbines).sum() / 1e6
        solar_mwh = sc.solar_farm_profile_w(early.composition.solar_kw).sum() / 1e6
        leader = "wind" if wind_mwh >= solar_mwh else "solar"
        print(
            f"{site:>9}: cheapest decarbonization {early.composition.label()} — "
            f"{leader}-led ({wind_mwh:,.0f} MWh wind vs {solar_mwh:,.0f} MWh solar), "
            f"cuts {100 * (1 - early.operational_tco2_per_day / rows[0].operational_tco2_per_day):.0f} % "
            f"of operational emissions for {early.embodied_tonnes:,.0f} tCO2 embodied"
        )

    for site, result in results.items():
        rows = paper_candidates(result.evaluated)
        projections = project_many(rows, horizon_years=20.0)
        year = crossover_year(projections[0], projections[-1])
        print(
            f"{site:>9}: grid-only baseline overtakes the max build-out after "
            f"{year:.1f} years" if year else f"{site:>9}: no crossover in 20 years"
        )


if __name__ == "__main__":
    main()
