"""Packaging for the ``repro`` reproduction package.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) on purpose: PEP 517
build isolation needs network access (to fetch setuptools/wheel) and
PEP 660 editable builds need the ``wheel`` package, neither of which the
offline environment has.

Three equivalent ways to use the package (documented in README.md):

* ``pip install -e .`` — where pip can build editables (needs ``wheel``);
* ``python setup.py develop`` — same effect, works fully offline with
  nothing but setuptools (installs the ``repro`` console script too);
* ``PYTHONPATH=src`` — run from the tree with no install at all.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

HERE = Path(__file__).resolve().parent

# Single-source the version from the package (without importing it, so
# setup.py works before dependencies are present).
VERSION = re.search(
    r'^__version__\s*=\s*"([^"]+)"',
    (HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-microgrid",
    version=VERSION,
    description=(
        "Reproduction of 'Optimizing Microgrid Composition for Sustainable "
        "Data Centers' (Irion, Wiesner, Bader & Kao, SC Workshops '25)"
    ),
    long_description=(HERE / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
