"""SimulationMetrics / EvaluatedComposition semantics."""

import pytest

from repro.core.composition import MicrogridComposition
from repro.core.metrics import EvaluatedComposition, SimulationMetrics
from repro.exceptions import ConfigurationError


def metrics(**overrides):
    base = dict(
        horizon_days=365.0,
        demand_energy_wh=14_191_200_000.0,  # 1.62 MW year
        onsite_generation_wh=10e9,
        grid_import_wh=4e9,
        grid_export_wh=1e9,
        battery_charge_wh=2e9,
        battery_discharge_wh=1.8e9,
        operational_emissions_kg=1_600_000.0,
        battery_usable_wh=20_250_000.0,  # 22.5 MWh × 0.9
    )
    base.update(overrides)
    return SimulationMetrics(**base)


class TestSimulationMetrics:
    def test_operational_rate(self):
        m = metrics(operational_emissions_kg=365_000.0)
        assert m.operational_tco2_per_day == pytest.approx(1.0)

    def test_coverage(self):
        m = metrics(demand_energy_wh=10e9, grid_import_wh=2.5e9)
        assert m.coverage == pytest.approx(0.75)

    def test_coverage_zero_demand(self):
        m = metrics(demand_energy_wh=0.0, grid_import_wh=0.0)
        assert m.coverage == 0.0

    def test_coverage_clamped(self):
        m = metrics(grid_import_wh=0.0, unserved_energy_wh=0.0)
        assert m.coverage == 1.0

    def test_battery_cycles(self):
        m = metrics(battery_discharge_wh=202_500_000.0)
        assert m.battery_cycles == pytest.approx(10.0)

    def test_no_battery_cycles_none(self):
        m = metrics(battery_usable_wh=0.0)
        assert m.battery_cycles is None

    def test_renewable_utilization(self):
        m = metrics(onsite_generation_wh=10e9, grid_export_wh=2e9)
        assert m.renewable_utilization == pytest.approx(0.8)

    def test_mean_import_intensity(self):
        m = metrics(grid_import_wh=1e9, operational_emissions_kg=400_000.0)
        # 1 GWh = 1e6 kWh; 4e8 g / 1e6 kWh = 400 g/kWh
        assert m.mean_import_intensity_g_per_kwh == pytest.approx(400.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            metrics(horizon_days=0.0)
        with pytest.raises(ConfigurationError):
            metrics(grid_import_wh=-5.0)


class TestEvaluatedComposition:
    def evaluated(self):
        comp = MicrogridComposition.from_mw(9.0, 8.0, 22.5)
        return EvaluatedComposition(
            composition=comp, embodied_kg=9_573_000.0, metrics=metrics()
        )

    def test_embodied_tonnes(self):
        assert self.evaluated().embodied_tonnes == pytest.approx(9_573.0)

    def test_objectives_default_pair(self):
        e = self.evaluated()
        op, em = e.objectives()
        assert op == pytest.approx(e.metrics.operational_tco2_per_day)
        assert em == pytest.approx(9_573.0)

    def test_objectives_extended_menu(self):
        e = self.evaluated()
        values = e.objectives(
            ("operational", "embodied", "cost", "cycles", "curtailment",
             "grid_dependence", "unreliability")
        )
        assert len(values) == 7
        assert values[5] == pytest.approx(1.0 - e.metrics.coverage)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            self.evaluated().objectives(("operational", "happiness"))

    def test_table_row_shape(self):
        row = self.evaluated().table_row()
        assert row["wind_mw"] == 9.0
        assert row["embodied_tco2"] == 9_573
        assert isinstance(row["coverage_pct"], float)

    def test_table_row_no_battery_dash(self):
        comp = MicrogridComposition(0, 0.0, 0)
        e = EvaluatedComposition(comp, 0.0, metrics(battery_usable_wh=0.0))
        assert e.table_row()["battery_cycles"] == "-"


class TestAggregateGrammar:
    """The unified scenario-reduction grammar (DESIGN.md §6)."""

    def test_base_aggregates(self):
        from repro.core.metrics import Aggregate, parse_aggregate

        assert parse_aggregate("worst") == Aggregate("worst", None)
        assert parse_aggregate("mean") == Aggregate("mean", None)

    def test_parametric_aggregates(self):
        from repro.core.metrics import Aggregate, parse_aggregate

        assert parse_aggregate("cvar:0.25") == Aggregate("cvar", 0.25)
        assert parse_aggregate("quantile:0.9") == Aggregate("quantile", 0.9)
        assert parse_aggregate("cvar:1") == Aggregate("cvar", 1.0)

    @pytest.mark.parametrize(
        "bad",
        [
            "median",           # unknown kind
            "worst:2",          # base aggregate takes no parameter
            "cvar",             # missing parameter
            "cvar:",            # empty parameter
            "cvar:x",           # non-numeric parameter
            "cvar:0",           # alpha out of (0, 1]
            "cvar:1.5",
            "quantile:-0.1",    # q out of [0, 1]
            "quantile:1.01",
            "",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        from repro.core.metrics import parse_aggregate

        with pytest.raises(ConfigurationError):
            parse_aggregate(bad)

    def test_aggregate_values_semantics(self):
        from repro.core.metrics import aggregate_values

        values = [4.0, 1.0, 3.0, 2.0]
        assert aggregate_values(values, "worst") == 4.0
        assert aggregate_values(values, "mean") == pytest.approx(2.5)
        # worst half = {4, 3}
        assert aggregate_values(values, "cvar:0.5") == pytest.approx(3.5)
        assert aggregate_values(values, "quantile:1.0") == 4.0
        assert aggregate_values(values, "quantile:0.0") == 1.0

    def test_cvar_between_mean_and_worst(self):
        from repro.core.metrics import aggregate_values

        values = [5.0, 1.0, 2.0, 8.0, 3.0]
        mean = aggregate_values(values, "mean")
        worst = aggregate_values(values, "worst")
        for alpha in (0.2, 0.4, 0.6, 0.8, 1.0):
            cvar = aggregate_values(values, f"cvar:{alpha}")
            assert mean - 1e-12 <= cvar <= worst + 1e-12
        assert aggregate_values(values, "cvar:1.0") == pytest.approx(mean)

    def test_empty_values_rejected(self):
        from repro.core.metrics import aggregate_values, cvar

        with pytest.raises(ConfigurationError):
            aggregate_values([], "worst")
        with pytest.raises(ConfigurationError):
            cvar([], 0.5)

    def test_robust_composition_accepts_extended_grammar(self):
        from repro.core.metrics import RobustEvaluatedComposition

        comp = MicrogridComposition(3, 9_000.0, 2)
        per_scenario = tuple(
            EvaluatedComposition(
                comp, 1.0e6, metrics(operational_emissions_kg=kg)
            )
            for kg in (1_000_000.0, 3_000_000.0, 2_000_000.0, 4_000_000.0)
        )
        cvar = RobustEvaluatedComposition(
            composition=comp, embodied_kg=1.0e6,
            per_scenario=per_scenario, aggregate="cvar:0.5",
        )
        worst = RobustEvaluatedComposition(
            composition=comp, embodied_kg=1.0e6,
            per_scenario=per_scenario, aggregate="worst",
        )
        rates = [e.operational_tco2_per_day for e in per_scenario]
        assert worst.operational_tco2_per_day == pytest.approx(max(rates))
        # worst half of {1, 3, 2, 4} MtCO2-years = {4, 3}
        expected = (rates[3] + rates[1]) / 2.0
        assert cvar.operational_tco2_per_day == pytest.approx(expected)
        assert cvar.objectives(("operational",))[0] == pytest.approx(expected)
        with pytest.raises(ConfigurationError):
            RobustEvaluatedComposition(
                composition=comp, embodied_kg=1.0e6,
                per_scenario=per_scenario, aggregate="cvar:nope",
            )
