"""The StudySpec identity seam (repro.core.study_spec, DESIGN.md §12).

The spec is the one place the full search identity lives: its
``to_metadata()``/``from_metadata()`` round-trip is what every driver
persists and every resume replays, and ``check_resume_identity`` is the
*single* validator all three drivers (batched, launcher-fanned,
pipelined) route through — so these tests also pin, by scanning the
source tree, that the historical per-driver copies stay deleted.
"""

import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.study_spec import (
    RESUME_REQUIRED_KEYS,
    StudySpec,
    check_resume_identity,
)
from repro.exceptions import OptimizationError

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRoundTrip:
    def test_plain_spec_round_trips_through_metadata(self):
        spec = StudySpec(sites=("houston",), n_hours=720, n_trials=40, seed=9)
        assert StudySpec.from_metadata(spec.to_metadata()) == spec

    def test_full_spec_round_trips_through_metadata(self):
        spec = StudySpec(
            sites=("berkeley", "houston"),
            year=2024,
            n_hours=2160,
            policy="tou_arbitrage",
            aggregate="cvar:0.25",
            n_trials=60,
            population=20,
            seed=3,
            ensemble="years=2020-2023,growth=1.0:1.3",
            racing="rungs=2,8,full",
            fidelity="fidelity=lo,full",
            pipeline="speculate=4",
            engine="loop",
            shards=2,
        )
        restored = StudySpec.from_metadata(spec.to_metadata())
        assert restored == spec
        # And the round-trip is a fixed point, not merely an equivalence.
        assert restored.to_metadata() == spec.to_metadata()

    def test_spec_strings_normalize_to_canonical_forms(self):
        spec = StudySpec(sites="Berkeley, Houston", racing="rungs=2,8,full")
        assert spec.sites == ("berkeley", "houston")
        assert spec.racing == "rungs=2,8,full"
        assert spec.default_name == "berkeley-houston-blackbox"

    def test_pipeline_spec_normalizes_and_exposes_speculate(self):
        spec = StudySpec(pipeline="speculate=3")
        assert spec.pipeline == "speculate=3"
        assert spec.speculate == 3
        assert StudySpec().speculate is None

    def test_cli_metadata_shape_is_preserved(self):
        # Key-compatibility with what cmd_study_run historically wrote:
        # optional features are *absent*, not None, and engine=auto is
        # informational-only so it is never persisted.
        md = StudySpec(sites=("houston",)).to_metadata()
        assert md["site"] == "houston" and md["sites"] == ["houston"]
        for key in ("ensemble", "racing", "fidelity", "pipeline", "engine", "shards"):
            assert key not in md

    def test_invalid_specs_fail_on_construction(self):
        with pytest.raises(OptimizationError, match="policy"):
            StudySpec(policy="nope")
        with pytest.raises(OptimizationError, match="engine"):
            StudySpec(engine="warp")
        with pytest.raises(OptimizationError, match="n_trials"):
            StudySpec(n_trials=0)
        with pytest.raises(Exception):
            StudySpec(aggregate="cvar:nope")


class TestFromMetadata:
    def test_missing_keys_are_all_named(self):
        with pytest.raises(OptimizationError) as err:
            StudySpec.from_metadata({"site": "houston"}, source="legacy.db")
        message = str(err.value)
        assert "legacy.db" in message
        for key in RESUME_REQUIRED_KEYS:
            if key != "site":
                assert f"'{key}'" in message

    def test_trials_override_waives_n_trials_and_takes_its_place(self):
        md = StudySpec(sites=("houston",), n_trials=30).to_metadata()
        del md["n_trials"]
        with pytest.raises(OptimizationError, match="n_trials"):
            StudySpec.from_metadata(md)
        spec = StudySpec.from_metadata(md, trials_override=50)
        assert spec.n_trials == 50

    def test_site_fallback_when_sites_list_is_absent(self):
        md = StudySpec(sites=("berkeley",)).to_metadata()
        del md["sites"]
        assert StudySpec.from_metadata(md).sites == ("berkeley",)


class TestCheckResumeIdentity:
    PERSISTED = {"racing": "rungs=2,8,full", "batch": 50, "seed": 7}

    def test_matching_identity_passes(self):
        check_resume_identity(
            "s", self.PERSISTED, {"racing": "rungs=2,8,full", "batch": 50}
        )

    def test_racing_mismatch_names_key_values_and_reason(self):
        with pytest.raises(OptimizationError, match="racing") as err:
            check_resume_identity("s", self.PERSISTED, {"racing": None})
        assert "rungs=2,8,full" in str(err.value)
        assert "<none>" in str(err.value)
        assert "rung schedule" in str(err.value)

    def test_batch_keeps_its_historical_label_and_leniency(self):
        # The batch key is lenient when either side is unpinned ...
        check_resume_identity("s", {}, {"batch": 40})
        check_resume_identity("s", self.PERSISTED, {"batch": None})
        # ... and its error message keeps the batch/population label the
        # serial driver always printed.
        with pytest.raises(OptimizationError, match="batch/population"):
            check_resume_identity("s", self.PERSISTED, {"batch": 40})

    def test_json_round_tripped_numbers_compare_equal(self):
        check_resume_identity("s", {"seed": "7", "batch": 50.0}, {"seed": 7, "batch": 50})

    def test_validate_resume_covers_the_full_identity(self):
        spec = StudySpec(sites=("houston",), n_hours=720)
        persisted = spec.to_metadata()
        spec.validate_resume(persisted)
        with pytest.raises(OptimizationError, match="seed"):
            spec.replaced(seed=99).validate_resume(persisted)
        with pytest.raises(OptimizationError, match="fidelity"):
            spec.replaced(fidelity="fidelity=lo,full").validate_resume(persisted)
        with pytest.raises(OptimizationError, match="pipeline"):
            spec.replaced(pipeline="speculate=2").validate_resume(persisted)


class TestSingleValidatorProof:
    """Grep-level acceptance: the divergent validators stay deleted."""

    def _sources(self):
        return {p: p.read_text() for p in SRC.rglob("*.py")}

    def test_require_resume_metadata_is_gone(self):
        for path, text in self._sources().items():
            assert "_require_resume_metadata" not in text, path

    def test_identity_mismatch_text_exists_in_exactly_one_module(self):
        # 'was persisted with <key>=' is the validator's fingerprint: it
        # must appear in study_spec.py and nowhere else in the library
        # (the study layer's *directions* check is a different contract
        # and deliberately not part of the key validator).
        hits = [
            path
            for path, text in self._sources().items()
            if re.search(r"was persisted with [\w/{}]+=", text)
        ]
        assert hits == [SRC / "core" / "study_spec.py"], hits

    def test_drivers_route_through_the_shared_validator(self):
        sources = self._sources()
        for rel in ("core/study_runner.py", "blackbox/parallel.py"):
            assert "check_resume_identity" in sources[SRC / rel], rel
        # And neither driver hand-rolls a racing/fidelity/pipeline
        # mismatch error anymore.
        for rel in ("core/study_runner.py", "blackbox/parallel.py", "cli.py"):
            text = sources[SRC / rel]
            assert not re.search(r"raise \w+Error\([^)]*resumed with", text, re.S), rel


class TestOldCliPathResumesThroughSpec:
    """A study persisted by `repro study run` resumes through
    StudySpec.from_metadata to the bit-identical front."""

    OVERRIDES = ["--set", "scenario.n_hours=720"]

    def _run(self, spec, trials):
        return main(
            ["study", "run", "--storage", spec, "--site", "houston",
             "--trials", str(trials), "--population", "10", "--seed", "7",
             *self.OVERRIDES]
        )

    def test_spec_resume_matches_uninterrupted_cli_front(self, tmp_path):
        from repro.blackbox import storage_from_url
        from repro.service import front_csv

        full = str(tmp_path / "full.jsonl")
        killed = str(tmp_path / "killed.jsonl")
        assert self._run(full, trials=30) == 0
        assert self._run(killed, trials=15) == 0

        storage = storage_from_url(killed)
        stored = storage.load_study("houston-blackbox")
        spec = StudySpec.from_metadata(stored.metadata, trials_override=30)
        spec.validate_resume(stored.metadata)
        spec.execute(storage, "houston-blackbox", load_if_exists=True)

        reference = storage_from_url(full).load_study("houston-blackbox")
        resumed = storage.load_study("houston-blackbox")
        assert len(resumed.trials) == 30
        assert front_csv(resumed) == front_csv(reference)
