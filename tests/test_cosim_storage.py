"""Storage implementations behind the cosim Storage interface."""

import numpy as np
import pytest

from repro.cosim.battery import CLCBattery, IdealBattery, LongDurationStorage
from repro.exceptions import ConfigurationError

HOUR = 3600.0


class TestCLCBattery:
    def test_initial_soc_clamped_to_window(self):
        b = CLCBattery(capacity_wh=10_000.0, initial_soc=0.01)
        assert b.soc() == pytest.approx(0.05)  # default soc_min

    def test_charge_discharge_roundtrip_loses_energy(self):
        # Start at the SoC floor so the only extractable energy is what we
        # just charged; the round trip must lose ~η_c·η_d.
        b = CLCBattery(capacity_wh=100_000.0, initial_soc=0.05)
        accepted = b.update(10_000.0, HOUR)
        assert accepted == pytest.approx(10_000.0)
        delivered = -b.update(-1e9, HOUR)  # drain as fast as allowed
        assert delivered == pytest.approx(10_000.0 * 0.95 * 0.95, rel=1e-2)
        assert delivered < 10_000.0

    def test_throughput_accounting(self):
        b = CLCBattery(capacity_wh=100_000.0, initial_soc=0.5)
        b.update(10_000.0, HOUR)
        b.update(-5_000.0, HOUR)
        assert b.charge_energy_wh == pytest.approx(10_000.0)
        assert b.discharge_energy_wh == pytest.approx(5_000.0)

    def test_equivalent_full_cycles(self):
        b = CLCBattery(capacity_wh=100_000.0, initial_soc=0.9)
        usable = b.usable_capacity_wh
        total = 0.0
        for _ in range(20):
            total += -b.update(-30_000.0, HOUR)
            b.update(30_000.0, HOUR)
        assert b.equivalent_full_cycles() == pytest.approx(total / usable)

    def test_reset(self):
        b = CLCBattery(capacity_wh=100_000.0, initial_soc=0.5, track_history=True)
        b.update(10_000.0, HOUR)
        b.reset()
        assert b.soc() == pytest.approx(0.5)
        assert b.charge_energy_wh == 0.0
        assert b.soc_history == [0.5]

    def test_history_tracking(self):
        b = CLCBattery(capacity_wh=100_000.0, initial_soc=0.5, track_history=True)
        b.update(10_000.0, HOUR)
        b.update(-10_000.0, HOUR)
        assert len(b.soc_history) == 3

    def test_zero_capacity(self):
        b = CLCBattery(capacity_wh=0.0)
        assert b.update(1e6, HOUR) == 0.0
        assert b.soc() == 0.0
        assert b.equivalent_full_cycles() == 0.0

    def test_params_capacity_mismatch_rejected(self):
        from repro.sam.batterymodels.clc import CLCParameters

        with pytest.raises(ConfigurationError):
            CLCBattery(capacity_wh=100.0, params=CLCParameters(capacity_wh=200.0))

    def test_rejects_nonpositive_duration(self):
        b = CLCBattery(capacity_wh=100.0)
        with pytest.raises(ConfigurationError):
            b.update(10.0, 0.0)


class TestIdealBattery:
    def test_lossless_roundtrip(self):
        b = IdealBattery(capacity_wh=10_000.0, initial_soc=0.0)
        accepted = b.update(5_000.0, HOUR)
        assert accepted == pytest.approx(5_000.0)
        delivered = -b.update(-5_000.0, HOUR)
        assert delivered == pytest.approx(5_000.0)
        assert b.energy_wh == pytest.approx(0.0)

    def test_capacity_cap(self):
        b = IdealBattery(capacity_wh=1_000.0, initial_soc=0.5)
        accepted = b.update(1e9, HOUR)
        assert accepted == pytest.approx(500.0)

    def test_cannot_overdraw(self):
        b = IdealBattery(capacity_wh=1_000.0, initial_soc=0.5)
        delivered = -b.update(-1e9, HOUR)
        assert delivered == pytest.approx(500.0)


class TestLongDurationStorage:
    def test_poor_roundtrip_efficiency(self):
        s = LongDurationStorage(
            capacity_wh=1e9, charge_power_w=1e6, discharge_power_w=1e6, initial_soc=0.0
        )
        s.update(1e6, HOUR)  # 1 MWh in → 0.65 MWh stored
        delivered = 0.0
        for _ in range(10):
            delivered += -s.update(-1e6, HOUR)
        assert delivered == pytest.approx(1e6 * 0.65 * 0.55, rel=1e-6)

    def test_power_ratings_enforced(self):
        s = LongDurationStorage(
            capacity_wh=1e9, charge_power_w=2e5, discharge_power_w=1e5, initial_soc=0.5
        )
        assert s.update(1e9, HOUR) == pytest.approx(2e5)
        assert s.update(-1e9, HOUR) == pytest.approx(-1e5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LongDurationStorage(capacity_wh=-1, charge_power_w=1, discharge_power_w=1)
        with pytest.raises(ConfigurationError):
            LongDurationStorage(
                capacity_wh=1, charge_power_w=1, discharge_power_w=1, eta_charge=0.0
            )
