"""Config system: composition, overrides, YAML, sweepers, launchers."""

import numpy as np
import pytest

from repro.blackbox import RandomSampler, create_study
from repro.blackbox.distributions import FloatDistribution, IntDistribution
from repro.confsys import (
    BlackboxSweeper,
    Config,
    GridSweeper,
    MultiprocessingLauncher,
    SerialLauncher,
    apply_overrides,
    compose,
    load_config,
    parse_override,
    save_config,
)
from repro.confsys.sweeper import SweepJob
from repro.exceptions import ConfigurationError


BASE = {
    "scenario": {"location": "berkeley", "year": 2024},
    "optimizer": {"n_trials": 350, "population": 50},
}


class TestConfig:
    def test_attribute_access(self):
        cfg = Config(BASE)
        assert cfg.scenario.location == "berkeley"
        assert cfg.optimizer.n_trials == 350

    def test_dot_path_access(self):
        cfg = Config(BASE)
        assert cfg.get("scenario.location") == "berkeley"
        assert cfg.get("scenario.missing", "fallback") == "fallback"

    def test_require(self):
        cfg = Config(BASE)
        assert cfg.require("scenario.year") == 2024
        with pytest.raises(ConfigurationError):
            cfg.require("scenario.ghost")

    def test_readonly(self):
        cfg = Config(BASE)
        with pytest.raises(ConfigurationError):
            cfg.foo = 1

    def test_updated_is_functional(self):
        cfg = Config(BASE)
        new = cfg.updated("scenario.location", "houston")
        assert new.scenario.location == "houston"
        assert cfg.scenario.location == "berkeley"  # original untouched

    def test_updated_creates_parents(self):
        cfg = Config({}).updated("a.b.c", 3)
        assert cfg.get("a.b.c") == 3

    def test_removed(self):
        cfg = Config(BASE).removed("optimizer.population")
        assert not cfg.has("optimizer.population")

    def test_flat(self):
        flat = Config(BASE).flat()
        assert flat["scenario.location"] == "berkeley"
        assert flat["optimizer.population"] == 50

    def test_source_dict_isolated(self):
        src = {"a": {"b": 1}}
        cfg = Config(src)
        src["a"]["b"] = 999
        assert cfg.get("a.b") == 1


class TestCompose:
    def test_later_layer_wins(self):
        cfg = compose(BASE, {"scenario": {"location": "houston"}})
        assert cfg.scenario.location == "houston"
        assert cfg.scenario.year == 2024  # deep merge preserved

    def test_three_layers(self):
        cfg = compose({"a": 1}, {"b": 2}, {"a": 3})
        assert cfg.get("a") == 3 and cfg.get("b") == 2


class TestOverrides:
    def test_parse_set(self):
        assert parse_override("a.b=3") == ("set", "a.b", 3)
        assert parse_override("a.b=3.5") == ("set", "a.b", 3.5)
        assert parse_override("a.b=true") == ("set", "a.b", True)
        assert parse_override("a.b=null") == ("set", "a.b", None)
        assert parse_override("a.b=hello") == ("set", "a.b", "hello")

    def test_parse_list(self):
        assert parse_override("a=1,2,3") == ("set", "a", [1, 2, 3])

    def test_parse_add_delete(self):
        assert parse_override("+x.y=1") == ("add", "x.y", 1)
        assert parse_override("~x.y") == ("del", "x.y", None)

    def test_apply(self):
        cfg = apply_overrides(
            Config(BASE),
            ["scenario.location=houston", "+scenario.tag=exp1", "~optimizer.population"],
        )
        assert cfg.scenario.location == "houston"
        assert cfg.scenario.tag == "exp1"
        assert not cfg.has("optimizer.population")

    def test_add_existing_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_overrides(Config(BASE), ["+scenario.location=x"])

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_override("no_equals_sign")
        with pytest.raises(ConfigurationError):
            parse_override("=value")


class TestYaml:
    def test_roundtrip(self, tmp_path):
        cfg = Config(BASE)
        path = tmp_path / "conf" / "experiment.yaml"
        save_config(cfg, path)
        loaded = load_config(path)
        assert loaded == cfg

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_config(tmp_path / "ghost.yaml")

    def test_non_mapping_rejected(self, tmp_path):
        p = tmp_path / "bad.yaml"
        p.write_text("- 1\n- 2\n")
        with pytest.raises(ConfigurationError):
            load_config(p)


class TestGridSweeper:
    def test_job_count_and_overrides(self):
        sweeper = GridSweeper(Config(BASE), {"scenario.location": ["berkeley", "houston"],
                                             "optimizer.population": [10, 50]})
        jobs = sweeper.jobs()
        assert len(sweeper) == 4 and len(jobs) == 4
        combos = {(j.config.scenario.location, j.config.optimizer.population) for j in jobs}
        assert combos == {("berkeley", 10), ("berkeley", 50), ("houston", 10), ("houston", 50)}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSweeper(Config(BASE), {})
        with pytest.raises(ConfigurationError):
            GridSweeper(Config(BASE), {"a": []})


class TestBlackboxSweeper:
    def test_drives_study(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=0))
        sweeper = BlackboxSweeper(
            Config({"model": {"lr": 0.1, "layers": 2}}),
            {"model.lr": FloatDistribution(1e-3, 1.0, log=True),
             "model.layers": IntDistribution(1, 8)},
            study,
        )

        def evaluate(cfg):
            return (np.log10(cfg.model.lr) + 2.0) ** 2 + (cfg.model.layers - 4) ** 2

        sweeper.run(evaluate, n_trials=60)
        assert study.best_value < 4.0
        assert 1 <= study.best_trial.params["model.layers"] <= 8


def _job_fn(job: SweepJob):
    return job.index * 10


class TestLaunchers:
    def _jobs(self, n=4):
        return [SweepJob(index=i, config=Config({})) for i in range(n)]

    def test_serial(self):
        assert SerialLauncher().launch(_job_fn, self._jobs()) == [0, 10, 20, 30]

    def test_multiprocessing_single_worker_fallback(self):
        launcher = MultiprocessingLauncher(n_workers=1)
        assert launcher.launch(_job_fn, self._jobs()) == [0, 10, 20, 30]

    def test_multiprocessing_pool(self):
        launcher = MultiprocessingLauncher(n_workers=2)
        assert launcher.launch(_job_fn, self._jobs(6)) == [0, 10, 20, 30, 40, 50]

    def test_empty_jobs(self):
        assert MultiprocessingLauncher().launch(_job_fn, []) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiprocessingLauncher(n_workers=0)
        with pytest.raises(ConfigurationError):
            MultiprocessingLauncher(chunksize=0)
