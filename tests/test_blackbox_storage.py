"""Study persistence: storage backends, journal replay, resume (DESIGN.md §3)."""

import json

import pytest

from repro.blackbox import (
    InMemoryStorage,
    JournalStorage,
    NSGA2Sampler,
    RandomSampler,
    TrialState,
    create_study,
)
from repro.blackbox.distributions import (
    CategoricalDistribution,
    FloatDistribution,
    IntDistribution,
    distribution_from_dict,
    distribution_to_dict,
)
from repro.blackbox.storage import decode_trial, encode_trial
from repro.blackbox.trial import FrozenTrial
from repro.core.composition import MicrogridComposition
from repro.exceptions import OptimizationError


def objective(trial):
    x = trial.suggest_float("x", -1.0, 1.0)
    k = trial.suggest_int("k", 0, 5)
    return x * x + k


class TestSerialization:
    def test_distribution_round_trip(self):
        for dist in (
            FloatDistribution(-1.0, 2.0),
            FloatDistribution(0.5, 8.0, log=True),
            FloatDistribution(0.0, 1.0, step=0.25),
            IntDistribution(0, 10, step=2),
            CategoricalDistribution(["a", "b", "c"]),
        ):
            assert distribution_from_dict(distribution_to_dict(dist)) == dist

    def test_distribution_unknown_type(self):
        with pytest.raises(OptimizationError):
            distribution_from_dict({"type": "weibull"})

    def test_trial_round_trip_through_json(self):
        trial = FrozenTrial(
            number=7,
            state=TrialState.COMPLETE,
            params={"x": 0.5, "k": 3},
            distributions={
                "x": FloatDistribution(-1.0, 1.0),
                "k": IntDistribution(0, 5),
            },
            values=(0.25, 3.0),
            intermediate={0: 1.0, 5: 0.5},
            user_attrs={"composition": MicrogridComposition(2, 8_000.0, 1)},
            system_attrs={"nsga2:genome": {"x": 0.5, "k": 3}},
        )
        # Through actual JSON text, like the journal does.
        restored = decode_trial(json.loads(json.dumps(encode_trial(trial))))
        assert restored == trial

    def test_unknown_objects_degrade_to_repr(self):
        trial = FrozenTrial(number=0, user_attrs={"weird": object()})
        restored = decode_trial(json.loads(json.dumps(encode_trial(trial))))
        assert "__repr__" in restored.user_attrs["weird"]


class TestInMemoryStorage:
    def test_records_and_loads(self):
        storage = InMemoryStorage()
        study = create_study(
            direction="minimize",
            sampler=RandomSampler(seed=1),
            study_name="s",
            storage=storage,
            metadata={"site": "houston"},
        )
        study.optimize(objective, n_trials=5)

        stored = storage.load_study("s")
        assert stored is not None
        assert stored.directions == ["minimize"]
        assert stored.metadata == {"site": "houston"}
        assert len(stored.finished_trials()) == 5
        assert all(t.state == TrialState.COMPLETE for t in stored.finished_trials())

    def test_loaded_trials_do_not_alias(self):
        storage = InMemoryStorage()
        study = create_study(storage=storage, study_name="s", sampler=RandomSampler(seed=2))
        study.optimize(objective, n_trials=2)
        loaded = storage.load_study("s")
        loaded.trials[0].params["x"] = 999.0
        assert storage.load_study("s").trials[0].params["x"] != 999.0

    def test_duplicate_create_raises(self):
        storage = InMemoryStorage()
        create_study(storage=storage, study_name="s")
        with pytest.raises(OptimizationError, match="already exists"):
            create_study(storage=storage, study_name="s")

    def test_load_if_exists_continues_numbering(self):
        storage = InMemoryStorage()
        first = create_study(storage=storage, study_name="s", sampler=RandomSampler(seed=3))
        first.optimize(objective, n_trials=4)

        resumed = create_study(
            storage=storage, study_name="s", sampler=RandomSampler(seed=3), load_if_exists=True
        )
        assert [t.number for t in resumed.trials] == [0, 1, 2, 3]
        resumed.optimize(objective, n_trials=2)
        assert len(resumed.trials) == 6
        assert len(storage.load_study("s").finished_trials()) == 6

    def test_direction_mismatch_raises(self):
        storage = InMemoryStorage()
        create_study(directions=["minimize", "maximize"], storage=storage, study_name="s")
        with pytest.raises(OptimizationError, match="directions"):
            create_study(direction="minimize", storage=storage, study_name="s", load_if_exists=True)


class TestJournalStorage:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JournalStorage(path) as storage:
            study = create_study(
                direction="minimize",
                sampler=RandomSampler(seed=4),
                study_name="s",
                storage=storage,
                metadata={"n_trials": 6},
            )
            study.optimize(objective, n_trials=6)

        stored = JournalStorage(path).load_study("s")
        assert stored is not None
        assert stored.metadata == {"n_trials": 6}
        assert [t.number for t in stored.finished_trials()] == list(range(6))
        assert [t.params for t in stored.finished_trials()] == [
            t.params for t in study.trials
        ]
        assert [t.values for t in stored.finished_trials()] == [
            t.values for t in study.trials
        ]

    def test_missing_file_loads_empty(self, tmp_path):
        storage = JournalStorage(tmp_path / "nope.jsonl")
        assert storage.load_study("s") is None
        assert storage.load_all() == {}

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        study = create_study(storage=storage, study_name="s", sampler=RandomSampler(seed=5))
        study.optimize(objective, n_trials=3)
        storage.close()
        with open(path, "a") as f:
            f.write('{"op": "finish", "study": "s", "tri')  # the crash case

        stored = JournalStorage(path).load_study("s")
        assert len(stored.finished_trials()) == 3

    def test_running_trials_dropped_on_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        study = create_study(storage=storage, study_name="s", sampler=RandomSampler(seed=6))
        study.optimize(objective, n_trials=3)
        study.ask()  # in-flight at "crash": start record, no finish

        stored = JournalStorage(path).load_study("s")
        assert len(stored.trials) == 4  # status view keeps the stale one
        resumed = create_study(
            storage=JournalStorage(path),
            study_name="s",
            sampler=RandomSampler(seed=6),
            load_if_exists=True,
        )
        assert len(resumed.trials) == 3  # resume discards it
        trial = resumed.ask()
        assert trial.number == 3  # the lost number is re-asked

    def test_renumbering_across_a_gap_survives_double_resume(self, tmp_path):
        # Out-of-order tell via the public ask/tell API: trial 0 is left
        # RUNNING while trial 1 completes, then the process dies.  The
        # first resume compacts 1→0; that compaction must be written
        # back, or the re-asked number 1 collides with the old trial-1
        # records and a second resume silently drops the completed trial.
        path = tmp_path / "journal.jsonl"
        study = create_study(storage=JournalStorage(path), study_name="s")
        t0 = study.ask()
        t1 = study.ask()
        t1.suggest_float("x", 0.0, 10.0)
        study.tell(t1, 5.0)  # t0 still RUNNING at the "crash"

        resumed = create_study(
            storage=JournalStorage(path), study_name="s", load_if_exists=True
        )
        assert [t.values for t in resumed.trials] == [(5.0,)]
        t_new = resumed.ask()
        t_new.suggest_float("x", 0.0, 10.0)
        resumed.tell(t_new, 9.0)

        # Exit cleanly here (no further asks) and resume once more: both
        # trials must survive, in compacted order, with no duplicates.
        second = create_study(
            storage=JournalStorage(path), study_name="s", load_if_exists=True
        )
        assert [(t.number, t.values) for t in second.trials] == [(0, (5.0,)), (1, (9.0,))]

    def test_renumbering_gap_then_clean_exit_does_not_duplicate(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        study = create_study(storage=JournalStorage(path), study_name="s")
        study.ask()
        t1 = study.ask()
        t1.suggest_float("x", 0.0, 10.0)
        study.tell(t1, 5.0)

        # Resume but ask nothing (target already reached) and exit.
        create_study(storage=JournalStorage(path), study_name="s", load_if_exists=True)
        second = create_study(
            storage=JournalStorage(path), study_name="s", load_if_exists=True
        )
        assert [(t.number, t.values) for t in second.trials] == [(0, (5.0,))]

    def test_last_write_wins_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        create_study(storage=storage, study_name="s")
        old = FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0,))
        new = FrozenTrial(number=0, state=TrialState.COMPLETE, values=(2.0,))
        storage.record_trial_finish("s", old)
        storage.record_trial_finish("s", new)
        stored = JournalStorage(path).load_study("s")
        assert len(stored.trials) == 1
        assert stored.trials[0].values == (2.0,)

    def test_multiple_studies_share_one_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        for name in ("a", "b"):
            study = create_study(storage=storage, study_name=name, sampler=RandomSampler(seed=7))
            study.optimize(objective, n_trials=2)
        loaded = JournalStorage(path).load_all()
        assert sorted(loaded) == ["a", "b"]
        assert all(len(s.finished_trials()) == 2 for s in loaded.values())
        assert JournalStorage(path).study_names() == ["a", "b"]

    def test_pruned_and_failed_states_persist(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        study = create_study(storage=storage, study_name="s", sampler=RandomSampler(seed=8))

        def flaky(trial):
            trial.suggest_float("x", 0.0, 1.0)
            if trial.number == 0:
                trial.prune()
            if trial.number == 1:
                raise ValueError("boom")
            return 1.0

        study.optimize(flaky, n_trials=3, catch=(ValueError,))
        states = [t.state for t in JournalStorage(path).load_study("s").trials]
        assert states == [TrialState.PRUNED, TrialState.FAILED, TrialState.COMPLETE]


class TestPerTrialSeeding:
    def test_same_trial_number_same_draws(self):
        a = NSGA2Sampler(population_size=4, seed=11)
        b = NSGA2Sampler(population_size=4, seed=11)
        a.per_trial_seeding = True
        b.per_trial_seeding = True
        a.begin_trial(3)
        b.begin_trial(3)
        assert a.rng.random() == b.rng.random()
        # Different trials get different streams.
        b.begin_trial(4)
        assert a.rng.random() != b.rng.random()

    def test_disabled_by_default(self):
        sampler = RandomSampler(seed=12)
        rng_before = sampler.rng
        sampler.begin_trial(0)
        assert sampler.rng is rng_before


class TestJournalCompaction:
    def _finish(self, number, value):
        return FrozenTrial(number=number, state=TrialState.COMPLETE, values=(value,))

    def _history(self, path, rewrites=4, live=5):
        """A journal whose every trial was re-told ``rewrites`` times."""
        storage = JournalStorage(path)
        storage.create_study("s", ["minimize"], {"n_trials": live})
        for round_ in range(rewrites):
            for n in range(live):
                storage.record_trial_finish("s", self._finish(n, float(round_)))
        return storage

    def test_compact_reaches_last_write_wins_fixed_point(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = self._history(path)
        before_state = storage.load_study("s")
        before, after = storage.compact()
        assert before == 1 + 4 * 5
        assert after == 1 + 5  # one create + one record per live trial
        compacted = JournalStorage(path).load_study("s")
        assert [t.values for t in compacted.trials] == [
            t.values for t in before_state.trials
        ]
        assert compacted.metadata == before_state.metadata
        # Idempotent: a compacted journal is its own fixed point.
        assert storage.compact() == (after, after)

    def test_compact_preserves_running_tombstones(self, tmp_path):
        # A start-only (in-flight at crash) trial must survive compaction
        # as a start record: resume relies on replaying it as RUNNING.
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        storage.create_study("s", ["minimize"], {})
        storage.record_trial_finish("s", self._finish(0, 1.0))
        storage.record_trial_start("s", FrozenTrial(number=1))
        storage.compact()
        stored = JournalStorage(path).load_study("s")
        assert stored.trials_by_number[0].state == TrialState.COMPLETE
        assert stored.trials_by_number[1].state == TrialState.RUNNING

    def test_appends_after_compact_land_in_new_file(self, tmp_path):
        # compact() atomically replaces the file; a stale append handle
        # would write into the unlinked old inode and lose the records.
        path = tmp_path / "journal.jsonl"
        storage = self._history(path)
        storage.compact()
        storage.record_trial_finish("s", self._finish(9, 9.0))
        assert JournalStorage(path).load_study("s").trials_by_number[9].values == (9.0,)

    def test_compact_empty_journal_is_a_noop(self, tmp_path):
        storage = JournalStorage(tmp_path / "missing.jsonl")
        assert storage.compact() == (0, 0)

    def test_compact_invalidates_own_cache(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = self._history(path)
        assert len(storage.load_study("s").trials) == 5  # fills the cache
        storage.compact()
        # The same instance must not serve the pre-compaction decode.
        assert len(storage.load_study("s").trials) == 5
        assert storage._records_cache is not None
        assert len(storage._records_cache[1]) == 6


class TestJournalRecordCache:
    def test_close_drops_the_cache(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        storage.create_study("s", ["minimize"], {})
        assert storage.load_study("s") is not None
        assert storage._records_cache is not None
        storage.close()
        assert storage._records_cache is None

    def test_cache_keyed_on_inode(self, tmp_path):
        # An in-place rewrite to the same byte size within mtime
        # granularity (exactly what compact() can produce) must not
        # serve stale records: the inode is part of the signature.
        path = tmp_path / "journal.jsonl"
        storage = JournalStorage(path)
        storage.create_study("s", ["minimize"], {})
        storage.record_trial_finish(
            "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0,))
        )
        storage.close()
        assert storage.load_study("s").trials[0].values == (1.0,)

        alt = tmp_path / "alt.jsonl"
        rewriter = JournalStorage(alt)
        rewriter.create_study("s", ["minimize"], {})
        rewriter.record_trial_finish(
            "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(2.0,))
        )
        rewriter.close()
        import os

        stat = path.stat()
        assert alt.stat().st_size == stat.st_size  # same size by construction
        os.replace(alt, path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))  # same mtime too
        assert storage.load_study("s").trials[0].values == (2.0,)
