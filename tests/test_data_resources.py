"""Synthetic resource generators: solar, wind, workload, carbon, events."""

import numpy as np
import pytest

from repro.data import (
    BERKELEY,
    HOUSTON,
    synthesize_carbon_intensity,
    synthesize_datacenter_trace,
    synthesize_solar_resource,
    synthesize_wind_resource,
)
from repro.data.carbon_intensity import REGION_MEANS_G_PER_KWH
from repro.data.weather_events import apply_events, dunkelflaute_events
from repro.data.workload import constant_trace
from repro.exceptions import ConfigurationError


class TestSolarResource:
    def test_deterministic(self):
        a = synthesize_solar_resource(BERKELEY)
        b = synthesize_solar_resource(BERKELEY)
        assert np.array_equal(a.ghi_w_m2, b.ghi_w_m2)

    def test_year_label_changes_weather(self):
        a = synthesize_solar_resource(BERKELEY, year_label=2023)
        b = synthesize_solar_resource(BERKELEY, year_label=2024)
        assert not np.array_equal(a.ghi_w_m2, b.ghi_w_m2)

    def test_physical_bounds(self):
        sr = synthesize_solar_resource(HOUSTON)
        assert np.all(sr.ghi_w_m2 >= 0)
        assert np.all(sr.ghi_w_m2 < 1200.0)  # below clear-sky ceiling
        assert np.all(sr.dni_w_m2 >= 0)
        assert np.all(sr.dhi_w_m2 >= 0)

    def test_night_is_dark(self):
        sr = synthesize_solar_resource(BERKELEY)
        # Midnight hours (local standard time) must have zero GHI.
        midnight = sr.ghi_w_m2[0::24]
        assert np.all(midnight == 0.0)

    def test_closure_ghi_components(self):
        """GHI ≈ DNI·cosθz + DHI (within decomposition caps)."""
        sr = synthesize_solar_resource(BERKELEY)
        from repro.sam.solar.geometry import solar_position

        pos = solar_position(
            sr.times_s, BERKELEY.latitude_deg, BERKELEY.longitude_deg, BERKELEY.timezone_hours
        )
        recomposed = sr.dni_w_m2 * pos.cos_zenith + sr.dhi_w_m2
        day = sr.ghi_w_m2 > 50.0
        assert np.allclose(recomposed[day], sr.ghi_w_m2[day], rtol=0.15, atol=30.0)

    def test_seasonal_cycle(self):
        sr = synthesize_solar_resource(BERKELEY)
        daily = sr.ghi_w_m2.reshape(365, 24).sum(axis=1)
        summer = daily[150:240].mean()
        winter = np.concatenate([daily[:60], daily[330:]]).mean()
        assert summer > 1.5 * winter

    def test_mean_daily_ghi_plausible(self):
        b = synthesize_solar_resource(BERKELEY).mean_daily_ghi_kwh_m2()
        h = synthesize_solar_resource(HOUSTON).mean_daily_ghi_kwh_m2()
        assert 4.2 <= b <= 5.6
        assert 3.8 <= h <= 5.2
        assert b > h  # Berkeley is the sunnier site

    def test_rejects_partial_days(self):
        with pytest.raises(ConfigurationError):
            synthesize_solar_resource(BERKELEY, n_hours=100)


class TestWindResource:
    def test_deterministic(self):
        a = synthesize_wind_resource(HOUSTON)
        b = synthesize_wind_resource(HOUSTON)
        assert np.array_equal(a.speed_ms, b.speed_ms)

    def test_nonnegative(self):
        wr = synthesize_wind_resource(BERKELEY)
        assert np.all(wr.speed_ms >= 0)

    def test_site_contrast(self):
        h = synthesize_wind_resource(HOUSTON).mean_speed()
        b = synthesize_wind_resource(BERKELEY).mean_speed()
        assert h > b + 2.0  # Houston is the wind site

    def test_autocorrelation_present(self):
        wr = synthesize_wind_resource(HOUSTON)
        v = wr.speed_ms - wr.speed_ms.mean()
        rho1 = float(np.dot(v[:-1], v[1:]) / np.dot(v, v))
        assert rho1 > 0.7  # persistent weather, not white noise

    def test_houston_nocturnal_diurnal_pattern(self):
        wr = synthesize_wind_resource(HOUSTON)
        by_hour = wr.speed_ms.reshape(-1, 24).mean(axis=0)
        night = by_hour[[0, 1, 2, 3]].mean()
        afternoon = by_hour[[13, 14, 15, 16]].mean()
        assert night > afternoon


class TestWorkload:
    def test_mean_calibrated_exactly(self):
        wl = synthesize_datacenter_trace()
        assert wl.mean_power_w() == pytest.approx(1.62e6, rel=1e-9)

    def test_always_positive_hpc_base_load(self):
        wl = synthesize_datacenter_trace()
        assert wl.power_w.min() > 0.25 * wl.mean_power_w()

    def test_no_diurnal_cycle(self):
        """Batch HPC demand must not follow the sun (key problem feature)."""
        wl = synthesize_datacenter_trace()
        by_hour = wl.power_w.reshape(-1, 24).mean(axis=0)
        assert by_hour.std() / by_hour.mean() < 0.05

    def test_custom_mean(self):
        wl = synthesize_datacenter_trace(mean_power_w=5e6)
        assert wl.mean_power_w() == pytest.approx(5e6)

    def test_annual_energy(self):
        wl = constant_trace(1e6, n_hours=8760)
        assert wl.annual_energy_kwh() == pytest.approx(8_760_000.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            synthesize_datacenter_trace(mean_power_w=-1.0)
        with pytest.raises(ConfigurationError):
            synthesize_datacenter_trace(base_fraction=1.5)


class TestCarbonIntensity:
    def test_means_match_paper_baselines(self):
        """38 880 kWh/day × mean CI must give the tables' baselines."""
        daily_kwh = 1.62e3 * 24.0
        for region, expected_t_day in (("ERCOT", 15.54), ("CAISO", 9.33)):
            ci = synthesize_carbon_intensity(region)
            baseline = daily_kwh * ci.mean() / 1e6
            assert baseline == pytest.approx(expected_t_day, abs=0.01)

    def test_caiso_duck_curve(self):
        ci = synthesize_carbon_intensity("CAISO")
        by_hour = ci.intensity_g_per_kwh.reshape(-1, 24).mean(axis=0)
        midday = by_hour[11:14].mean()
        evening = by_hour[18:21].mean()
        assert evening > 1.3 * midday  # solar dip + evening ramp

    def test_ercot_night_dips(self):
        ci = synthesize_carbon_intensity("ERCOT")
        by_hour = ci.intensity_g_per_kwh.reshape(-1, 24).mean(axis=0)
        assert by_hour[[0, 1, 2, 3]].mean() < by_hour[[15, 16, 17]].mean()

    def test_ercot_dirtier_than_caiso(self):
        assert REGION_MEANS_G_PER_KWH["ERCOT"] > REGION_MEANS_G_PER_KWH["CAISO"]

    def test_positive(self):
        ci = synthesize_carbon_intensity("CAISO")
        assert np.all(ci.intensity_g_per_kwh > 0)

    def test_unknown_region(self):
        with pytest.raises(ConfigurationError):
            synthesize_carbon_intensity("EU")

    def test_custom_mean(self):
        ci = synthesize_carbon_intensity("CAISO", mean_g_per_kwh=100.0)
        assert ci.mean() == pytest.approx(100.0)


class TestDunkelflaute:
    def test_events_shared_between_generators(self):
        """Solar and wind must see the same event windows."""
        a = dunkelflaute_events(HOUSTON, 2024)
        b = dunkelflaute_events(HOUSTON, 2024)
        assert a == b
        assert len(a) >= 3

    def test_events_in_winter(self):
        for event in dunkelflaute_events(HOUSTON, 2024):
            day = event.start_hour // 24
            assert day >= 300 or day < 61

    def test_apply_attenuates(self):
        events = dunkelflaute_events(HOUSTON, 2024)
        series = np.ones(8760)
        apply_events(series, events, "wind")
        event = events[0]
        mid = event.start_hour + event.duration_hours // 2
        assert series[mid] == pytest.approx(event.wind_factor)
        # outside events untouched
        assert series[200 * 24] == 1.0

    def test_apply_rejects_unknown_channel(self):
        with pytest.raises(ConfigurationError):
            apply_events(np.ones(10), [], "tidal")

    def test_wind_resource_contains_lulls(self):
        """The becalmed stretches must survive into the resource."""
        wr = synthesize_wind_resource(HOUSTON)
        events = dunkelflaute_events(HOUSTON, 2024)
        event = max(events, key=lambda e: e.duration_hours)
        lull = wr.speed_ms[event.start_hour + 6 : event.start_hour + event.duration_hours - 6]
        assert lull.mean() < 0.4 * wr.mean_speed()
