"""Unit-conversion invariants (repro.units)."""

import pytest

from repro import units


class TestPowerEnergy:
    def test_mw_w_roundtrip(self):
        assert units.w_to_mw(units.mw_to_w(3.7)) == pytest.approx(3.7)

    def test_kw_w_roundtrip(self):
        assert units.w_to_kw(units.kw_to_w(0.25)) == pytest.approx(0.25)

    def test_mwh_wh_roundtrip(self):
        assert units.wh_to_mwh(units.mwh_to_wh(7.5)) == pytest.approx(7.5)

    def test_kwh_wh_roundtrip(self):
        assert units.wh_to_kwh(units.kwh_to_wh(12.0)) == pytest.approx(12.0)

    def test_power_to_energy_one_hour(self):
        # 1 MW for one hour is 1 MWh.
        assert units.power_to_energy_wh(1e6, 3600.0) == pytest.approx(1e6)

    def test_power_to_energy_half_hour(self):
        assert units.power_to_energy_wh(1e6, 1800.0) == pytest.approx(5e5)

    def test_energy_to_power_inverse(self):
        e = units.power_to_energy_wh(123_456.0, 7200.0)
        assert units.energy_to_power_w(e, 7200.0) == pytest.approx(123_456.0)

    def test_energy_to_power_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            units.energy_to_power_w(100.0, 0.0)


class TestCarbon:
    def test_kg_tonne_roundtrip(self):
        assert units.tonnes_to_kg(units.kg_to_tonnes(987.0)) == pytest.approx(987.0)

    def test_grid_emissions_simple(self):
        # 1 MWh at 400 g/kWh = 400 kg.
        assert units.grid_emissions_kg(1e6, 400.0) == pytest.approx(400.0)

    def test_grid_emissions_zero_intensity(self):
        assert units.grid_emissions_kg(1e6, 0.0) == 0.0


class TestPaperConstants:
    """The embodied constants must reproduce the paper's table totals."""

    def test_solar_increment_embodied(self):
        # 4 MW × 630 kg/kW = 2 520 tCO2 per increment.
        total_kg = units.SOLAR_INCREMENT_KW * units.SOLAR_EMBODIED_KG_PER_KW
        assert total_kg / 1000.0 == pytest.approx(2_520.0)

    def test_battery_unit_embodied(self):
        # 7.5 MWh × 62 kg/kWh = 465 tCO2 per unit.
        total_kg = units.BATTERY_UNIT_KWH * units.BATTERY_EMBODIED_KG_PER_KWH
        assert total_kg / 1000.0 == pytest.approx(465.0)

    def test_wind_turbine_embodied(self):
        assert units.WIND_EMBODIED_KG_PER_TURBINE / 1000.0 == pytest.approx(1_046.0)

    def test_perlmutter_mean(self):
        assert units.PERLMUTTER_MEAN_POWER_W == pytest.approx(1.62e6)
