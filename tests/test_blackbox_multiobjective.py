"""Dominance, non-dominated sorting, crowding, hypervolume."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.blackbox.multiobjective import (
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front_indices,
    pareto_recovery_rate,
)
from repro.exceptions import OptimizationError


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])

    def test_partial_improvement_dominates(self):
        assert dominates([1.0, 2.0], [2.0, 2.0])

    def test_equal_not_dominating(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_tradeoff_incomparable(self):
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([2.0, 2.0], [1.0, 3.0])


class TestParetoFront:
    def test_simple_front(self):
        points = np.array([[1, 5], [2, 3], [3, 4], [4, 1], [5, 5]])
        idx = set(pareto_front_indices(points).tolist())
        assert idx == {0, 1, 3}

    def test_all_equal_all_on_front(self):
        points = np.tile([2.0, 2.0], (4, 1))
        assert len(pareto_front_indices(points)) == 4

    def test_empty(self):
        assert pareto_front_indices(np.empty((0, 2))).size == 0


class TestNonDominatedSort:
    def test_rank_structure(self):
        # Two nested fronts.
        points = np.array([[1, 4], [4, 1], [2, 5], [5, 2]])
        fronts = non_dominated_sort(points)
        assert len(fronts) == 2
        assert set(fronts[0].tolist()) == {0, 1}
        assert set(fronts[1].tolist()) == {2, 3}

    def test_total_partition(self):
        rng = np.random.default_rng(5)
        points = rng.random((50, 3))
        fronts = non_dominated_sort(points)
        everything = np.concatenate(fronts)
        assert sorted(everything.tolist()) == list(range(50))

    def test_fronts_are_mutually_nondominating(self):
        rng = np.random.default_rng(6)
        points = rng.random((40, 2))
        fronts = non_dominated_sort(points)
        for front in fronts:
            sub = points[front]
            assert len(pareto_front_indices(sub)) == len(front)


class TestCrowding:
    def test_boundaries_infinite(self):
        points = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        crowd = crowding_distance(points)
        assert np.isinf(crowd[0]) and np.isinf(crowd[3])
        assert np.isfinite(crowd[1]) and np.isfinite(crowd[2])

    def test_sparse_point_less_crowded(self):
        points = np.array([[0.0, 4.0], [0.1, 3.9], [0.2, 3.8], [2.0, 1.0], [4.0, 0.0]])
        crowd = crowding_distance(points)
        assert crowd[3] > crowd[1]

    def test_two_points_both_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d(np.array([[1.0, 1.0]]), np.array([3.0, 3.0]))
        assert hv == pytest.approx(4.0)

    def test_staircase(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = hypervolume_2d(pts, np.array([3.0, 3.0]))
        # (3-1)(3-2) + (3-2)(2-1) = 2 + 1 = 3
        assert hv == pytest.approx(3.0)

    def test_dominated_point_no_extra_volume(self):
        base = hypervolume_2d(np.array([[1.0, 1.0]]), np.array([3.0, 3.0]))
        more = hypervolume_2d(np.array([[1.0, 1.0], [2.0, 2.0]]), np.array([3.0, 3.0]))
        assert more == pytest.approx(base)

    def test_points_outside_reference_ignored(self):
        hv = hypervolume_2d(np.array([[5.0, 5.0]]), np.array([3.0, 3.0]))
        assert hv == 0.0

    def test_wrong_dims_rejected(self):
        with pytest.raises(OptimizationError):
            hypervolume_2d(np.array([[1.0, 2.0, 3.0]]), np.array([1.0, 1.0, 1.0]))


class TestRecoveryRate:
    def test_full_recovery(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert pareto_recovery_rate(front, front) == 1.0

    def test_partial_recovery(self):
        true = np.array([[1.0, 2.0], [2.0, 1.0]])
        found = np.array([[1.0, 2.0], [9.0, 9.0]])
        assert pareto_recovery_rate(found, true) == pytest.approx(0.5)

    def test_empty_found(self):
        assert pareto_recovery_rate(np.empty((0, 2)), np.array([[1.0, 1.0]])) == 0.0

    def test_empty_true_front(self):
        assert pareto_recovery_rate(np.array([[1.0, 1.0]]), np.empty((0, 2))) == 1.0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_front_members_not_dominated(points):
    """No member of the computed front is dominated by any input point."""
    arr = np.array(points)
    front = pareto_front_indices(arr)
    for i in front:
        for j in range(arr.shape[0]):
            assert not dominates(arr[j], arr[i])


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=5, allow_nan=False),
            st.floats(min_value=0, max_value=5, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_hypervolume_monotone_in_points(points):
    """Adding points can only grow (or keep) the hypervolume."""
    arr = np.array(points)
    ref = np.array([6.0, 6.0])
    partial = hypervolume_2d(arr[: max(len(arr) // 2, 1)], ref)
    full = hypervolume_2d(arr, ref)
    assert full >= partial - 1e-12
