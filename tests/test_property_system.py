"""System-level property-based tests (hypothesis).

These go beyond per-module checks: they fuzz whole microgrid steps,
batch evaluations, and config pipelines, asserting the conservation laws
and orderings the entire reproduction rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.confsys import Config, apply_overrides
from repro.core.composition import MicrogridComposition
from repro.core.embodied import embodied_carbon_tonnes
from repro.core.fastsim import BatchEvaluator
from repro.core.scenario import build_scenario
from repro.cosim import (
    Actor,
    CLCBattery,
    ConstantSignal,
    DefaultPolicy,
    IslandedPolicy,
    Microgrid,
)

HOUR = 3600.0

# ---------------------------------------------------------------------------
# Microgrid step invariants
# ---------------------------------------------------------------------------

powers = st.floats(min_value=0.0, max_value=5e6, allow_nan=False)
socs = st.floats(min_value=0.05, max_value=0.95)
capacities = st.floats(min_value=0.0, max_value=60e6)


@given(production=powers, consumption=powers, capacity=capacities, soc=socs)
@settings(max_examples=150, deadline=None)
def test_property_power_balance_any_state(production, consumption, capacity, soc):
    """Conservation: supply == use for arbitrary states (grid-connected)."""
    storage = CLCBattery(capacity_wh=capacity, initial_soc=soc) if capacity > 0 else None
    mg = Microgrid(
        actors=[
            Actor("gen", ConstantSignal(production)),
            Actor("load", ConstantSignal(consumption), is_consumer=True),
        ],
        storage=storage,
        policy=DefaultPolicy(),
    )
    r = mg.step(0.0, HOUR)
    supply = r.production_w + r.grid_import_w + r.storage_discharge_w
    use = r.consumption_w + r.grid_export_w + r.storage_charge_w
    assert supply == pytest.approx(use, abs=1e-3)
    # No simultaneous import & export, charge & discharge.
    assert min(r.grid_import_w, r.grid_export_w) == 0.0
    assert min(r.storage_charge_w, r.storage_discharge_w) == 0.0


@given(production=powers, consumption=powers, capacity=capacities, soc=socs)
@settings(max_examples=100, deadline=None)
def test_property_islanded_never_imports(production, consumption, capacity, soc):
    storage = CLCBattery(capacity_wh=capacity, initial_soc=soc) if capacity > 0 else None
    mg = Microgrid(
        actors=[
            Actor("gen", ConstantSignal(production)),
            Actor("load", ConstantSignal(consumption), is_consumer=True),
        ],
        storage=storage,
        policy=IslandedPolicy(),
    )
    r = mg.step(0.0, HOUR)
    assert r.grid_import_w == 0.0
    supply = r.production_w + r.storage_discharge_w + r.unserved_w
    use = r.consumption_w + r.grid_export_w + r.storage_charge_w
    assert supply == pytest.approx(use, abs=1e-3)


# ---------------------------------------------------------------------------
# Batch-evaluator invariants on the real (short) scenario
# ---------------------------------------------------------------------------

comp_strategy = st.builds(
    MicrogridComposition,
    n_turbines=st.integers(min_value=0, max_value=10),
    solar_kw=st.sampled_from([0.0, 4_000.0, 12_000.0, 24_000.0, 40_000.0]),
    battery_units=st.integers(min_value=0, max_value=8),
)


@pytest.fixture(scope="module")
def short_evaluator():
    return BatchEvaluator(build_scenario("houston", n_hours=24 * 21))


@given(comp=comp_strategy)
@settings(max_examples=40, deadline=None)
def test_property_metrics_well_formed(short_evaluator, comp):
    """Any composition yields physically consistent aggregate metrics."""
    e = short_evaluator.evaluate_one(comp)
    m = e.metrics
    assert 0.0 <= m.coverage <= 1.0
    assert m.grid_import_wh >= 0 and m.grid_export_wh >= 0
    assert m.operational_emissions_kg >= 0
    # Energy closure: gen + import = demand + export + battery net absorb.
    battery_net = m.battery_charge_wh - m.battery_discharge_wh
    lhs = m.onsite_generation_wh + m.grid_import_wh
    rhs = m.demand_energy_wh + m.grid_export_wh + battery_net
    assert lhs == pytest.approx(rhs, rel=1e-6, abs=1.0)
    # Embodied accounting is exact and deterministic.
    assert e.embodied_tonnes == pytest.approx(embodied_carbon_tonnes(comp))


@given(
    comp=comp_strategy,
    extra_batteries=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_property_more_storage_never_increases_import(short_evaluator, comp, extra_batteries):
    """Adding battery units can only reduce (or keep) grid imports."""
    bigger = MicrogridComposition(
        comp.n_turbines, comp.solar_kw, min(comp.battery_units + extra_batteries, 8)
    )
    if bigger.battery_units == comp.battery_units:
        return
    small = short_evaluator.evaluate_one(comp)
    large = short_evaluator.evaluate_one(bigger)
    assert large.metrics.grid_import_wh <= small.metrics.grid_import_wh + 1.0


@given(comp=comp_strategy, extra_turbines=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_property_more_wind_never_decreases_coverage(short_evaluator, comp, extra_turbines):
    bigger = MicrogridComposition(
        min(comp.n_turbines + extra_turbines, 10), comp.solar_kw, comp.battery_units
    )
    if bigger.n_turbines == comp.n_turbines:
        return
    small = short_evaluator.evaluate_one(comp)
    large = short_evaluator.evaluate_one(bigger)
    assert large.metrics.coverage >= small.metrics.coverage - 1e-9


# ---------------------------------------------------------------------------
# Config pipeline round trips
# ---------------------------------------------------------------------------

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.booleans(),
    st.text(alphabet="xyz", min_size=1, max_size=6),
)


@given(path=st.lists(keys, min_size=1, max_size=3), value=scalars)
@settings(max_examples=80)
def test_property_config_set_get_roundtrip(path, value):
    dotted = ".".join(path)
    cfg = Config({}).updated(dotted, value)
    got = cfg.require(dotted)
    if isinstance(value, float):
        assert got == pytest.approx(value)
    else:
        assert got == value


@given(path=st.lists(keys, min_size=1, max_size=3), value=st.integers(-99, 99))
@settings(max_examples=60)
def test_property_override_string_roundtrip(path, value):
    """`key=value` overrides parse back to the exact value for ints."""
    dotted = ".".join(path)
    cfg = apply_overrides(Config({}), [f"{dotted}={value}"])
    assert cfg.require(dotted) == value
