"""Deterministic seeding (repro.rng)."""

import numpy as np

from repro.rng import ROOT_SEED, generator_for, seed_for


class TestSeedFor:
    def test_deterministic(self):
        assert seed_for("wind", "houston", 2024) == seed_for("wind", "houston", 2024)

    def test_distinct_names_distinct_seeds(self):
        assert seed_for("wind", "houston") != seed_for("wind", "berkeley")
        assert seed_for("wind") != seed_for("solar")

    def test_component_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert seed_for("ab", "c") != seed_for("a", "bc")

    def test_root_seed_changes_everything(self):
        assert seed_for("x", root=1) != seed_for("x", root=2)

    def test_range(self):
        s = seed_for("anything", 123, "deep", root=ROOT_SEED)
        assert 0 <= s < 2**63


class TestGeneratorFor:
    def test_streams_reproducible(self):
        a = generator_for("test", 1).standard_normal(8)
        b = generator_for("test", 1).standard_normal(8)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        a = generator_for("test", 1).standard_normal(8)
        b = generator_for("test", 2).standard_normal(8)
        assert not np.array_equal(a, b)
