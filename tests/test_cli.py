"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_site_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "--site", "atlantis"])

    def test_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.trials == 350 and args.population == 50


class TestCommands:
    """Run the real commands against the small-but-real Houston scenario
    (overridden to 60 days so the suite stays fast)."""

    OVERRIDES = ["--set", "scenario.n_hours=1440"]

    def test_table(self, capsys):
        assert main(["table", "--site", "houston", *self.OVERRIDES]) == 0
        out = capsys.readouterr().out
        assert "Wind (MW)" in out
        assert "houston" in out

    def test_pareto_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "front.csv"
        assert main(["pareto", "--site", "houston", "--csv", str(csv), *self.OVERRIDES]) == 0
        assert csv.exists()
        assert "embodied" in capsys.readouterr().out

    def test_projection(self, capsys):
        assert main(["projection", "--site", "houston", "--years", "10", *self.OVERRIDES]) == 0
        out = capsys.readouterr().out
        assert "tCO2" in out

    def test_coverage(self, capsys):
        assert main(["coverage", "--site", "houston", *self.OVERRIDES]) == 0
        assert "coverage [%]" in capsys.readouterr().out

    def test_search(self, capsys):
        assert (
            main(
                [
                    "search", "--site", "houston", "--trials", "40",
                    "--population", "10", "--seed", "1", *self.OVERRIDES,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recovery" in out and "speed-up" in out

    def test_report(self, capsys):
        assert main(["report", "--site", "houston", *self.OVERRIDES]) == 0
        assert "Candidate solutions" in capsys.readouterr().out

    def test_all_writes_artifacts(self, tmp_path, capsys):
        assert (
            main(["all", "--output-dir", str(tmp_path / "art"), *self.OVERRIDES]) == 0
        )
        names = {p.name for p in (tmp_path / "art").iterdir()}
        assert {"table_houston.txt", "table_berkeley.txt"} <= names
        assert {"fig2_pareto_houston.csv", "fig3_projection_berkeley.csv",
                "fig4_coverage_houston.csv"} <= names

    def test_mean_power_override(self, capsys):
        assert (
            main(
                ["table", "--site", "houston", "--set", "scenario.n_hours=720",
                 "--set", "scenario.mean_power_mw=3.24"]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Doubling the load roughly doubles baseline daily emissions.
        assert "31" in out or "30" in out
