"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_site_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "--site", "atlantis"])

    def test_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.trials == 350 and args.population == 50


class TestCommands:
    """Run the real commands against the small-but-real Houston scenario
    (overridden to 60 days so the suite stays fast)."""

    OVERRIDES = ["--set", "scenario.n_hours=1440"]

    def test_table(self, capsys):
        assert main(["table", "--site", "houston", *self.OVERRIDES]) == 0
        out = capsys.readouterr().out
        assert "Wind (MW)" in out
        assert "houston" in out

    def test_pareto_with_csv(self, tmp_path, capsys):
        csv = tmp_path / "front.csv"
        assert main(["pareto", "--site", "houston", "--csv", str(csv), *self.OVERRIDES]) == 0
        assert csv.exists()
        assert "embodied" in capsys.readouterr().out

    def test_projection(self, capsys):
        assert main(["projection", "--site", "houston", "--years", "10", *self.OVERRIDES]) == 0
        out = capsys.readouterr().out
        assert "tCO2" in out

    def test_coverage(self, capsys):
        assert main(["coverage", "--site", "houston", *self.OVERRIDES]) == 0
        assert "coverage [%]" in capsys.readouterr().out

    def test_search(self, capsys):
        assert (
            main(
                [
                    "search", "--site", "houston", "--trials", "40",
                    "--population", "10", "--seed", "1", *self.OVERRIDES,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "recovery" in out and "speed-up" in out

    def test_report(self, capsys):
        assert main(["report", "--site", "houston", *self.OVERRIDES]) == 0
        assert "Candidate solutions" in capsys.readouterr().out

    def test_all_writes_artifacts(self, tmp_path, capsys):
        assert (
            main(["all", "--output-dir", str(tmp_path / "art"), *self.OVERRIDES]) == 0
        )
        names = {p.name for p in (tmp_path / "art").iterdir()}
        assert {"table_houston.txt", "table_berkeley.txt"} <= names
        assert {"fig2_pareto_houston.csv", "fig3_projection_berkeley.csv",
                "fig4_coverage_houston.csv"} <= names

    def test_mean_power_override(self, capsys):
        assert (
            main(
                ["table", "--site", "houston", "--set", "scenario.n_hours=720",
                 "--set", "scenario.mean_power_mw=3.24"]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Doubling the load roughly doubles baseline daily emissions.
        assert "31" in out or "30" in out


def _stored_front(spec, name):
    """(front key, params, values) of a persisted study's completed trials."""
    from repro.blackbox import storage_from_url
    from repro.blackbox.multiobjective import pareto_front_indices
    from repro.blackbox.trial import TrialState

    import numpy as np

    stored = storage_from_url(spec).load_study(name)
    completed = [t for t in stored.trials if t.state == TrialState.COMPLETE]
    values = np.array([t.values for t in completed])
    front = pareto_front_indices(values)
    return (
        sorted(tuple(sorted(completed[i].params.items())) for i in front),
        [t.params for t in completed],
        [t.values for t in completed],
    )


class TestStudyStorageCli:
    """The storage subsystem behind the CLI: URL specs, sqlite resume,
    compaction, shard merge, fail-loud metadata (DESIGN.md §7)."""

    OVERRIDES = ["--set", "scenario.n_hours=720"]

    def _run(self, spec, trials, extra=()):
        return main(
            ["study", "run", "--storage", spec, "--site", "houston",
             "--trials", str(trials), "--population", "10", "--seed", "7",
             *extra, *self.OVERRIDES]
        )

    def test_sqlite_kill_and_resume_reproduces_the_front(self, tmp_path, capsys):
        full = str(tmp_path / "full.db")
        killed = str(tmp_path / "killed.db")
        assert self._run(full, trials=30) == 0
        # The "kill": an identically-seeded run that only reached 15
        # trials (what kill -9 leaves: fewer trials than the target).
        assert self._run(killed, trials=15) == 0
        assert (
            main(["study", "resume", "--storage", killed, "--trials", "30"]) == 0
        )
        assert _stored_front(full, "houston-blackbox") == _stored_front(
            killed, "houston-blackbox"
        )

    def test_resume_fails_loudly_on_missing_metadata(self, tmp_path):
        # A store written by a pre-contract driver: no persisted search
        # parameters.  Resuming must name the missing key, not guess a
        # default and silently produce a different front.
        from repro.blackbox import SQLiteStorage, TrialState
        from repro.blackbox.trial import FrozenTrial

        spec = str(tmp_path / "legacy.db")
        storage = SQLiteStorage(spec)
        storage.create_study("old", ["minimize", "minimize"], {"site": "houston"})
        storage.record_trial_finish(
            "old",
            FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0, 2.0)),
        )
        with pytest.raises(SystemExit, match="n_trials"):
            main(["study", "resume", "--storage", spec])
        # With the trial target overridden, the next missing key is named.
        with pytest.raises(SystemExit, match="population"):
            main(["study", "resume", "--storage", spec, "--trials", "10"])

    def test_compact_verb_preserves_study_state(self, tmp_path, capsys):
        spec = str(tmp_path / "c.jsonl")
        assert self._run(spec, trials=20) == 0
        before = _stored_front(spec, "houston-blackbox")
        lines_before = len((tmp_path / "c.jsonl").read_text().splitlines())
        assert main(["study", "compact", "--journal", spec]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        lines_after = len((tmp_path / "c.jsonl").read_text().splitlines())
        assert lines_after < lines_before
        assert _stored_front(spec, "houston-blackbox") == before

    def test_sharded_run_merges_to_the_single_store_front(self, tmp_path, capsys):
        single = str(tmp_path / "single.db")
        sharded = str(tmp_path / "sharded.db")
        merged = str(tmp_path / "merged.db")
        assert self._run(single, trials=20) == 0
        assert self._run(sharded, trials=20, extra=["--shards", "2"]) == 0
        assert (tmp_path / "sharded.db.shard0").exists()
        assert (tmp_path / "sharded.db.shard1").exists()
        assert not (tmp_path / "sharded.db").exists()
        # status reopens the sharded topology transparently.
        assert main(["study", "status", "--storage", sharded]) == 0
        assert "20/20 complete" in capsys.readouterr().out
        assert (
            main(
                ["study", "merge", "--into", merged,
                 "--from", sharded + ".shard0", "--from", sharded + ".shard1"]
            )
            == 0
        )
        assert _stored_front(merged, "houston-blackbox") == _stored_front(
            single, "houston-blackbox"
        )

    def test_journal_and_storage_flags_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["study", "status", "--journal", "a.jsonl", "--storage", "b.db"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "status"])  # one is required

    def test_memory_scheme_runs_but_cannot_persist(self, capsys):
        # memory:// flows through the same registry; useful for smoke
        # runs where nothing should land on disk.
        assert (
            main(
                ["study", "run", "--storage", "memory://", "--site", "houston",
                 "--trials", "10", "--population", "5", "--seed", "1",
                 *self.OVERRIDES]
            )
            == 0
        )
        assert "front size" in capsys.readouterr().out
