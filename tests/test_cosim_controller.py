"""Controllers: demand response and carbon-aware grid charging."""

import numpy as np
import pytest

from repro.cosim import (
    Actor,
    CLCBattery,
    CarbonAwareChargeController,
    ConstantSignal,
    DeferrableLoadController,
    GridConnection,
    Microgrid,
    TraceSignal,
)
from repro.exceptions import ConfigurationError
from repro.timeseries import TimeSeries

HOUR = 3600.0


def microgrid_with_load(load_w=1_000.0, battery=None):
    return Microgrid(
        actors=[Actor("dc", ConstantSignal(load_w), is_consumer=True)],
        storage=battery,
    )


class TestDeferrableLoad:
    def ci_signal(self, values):
        return TraceSignal(TimeSeries(np.asarray(values, float), step_s=HOUR), wrap=True)

    def test_sheds_under_high_carbon(self):
        ci = self.ci_signal([500.0, 100.0])
        mg = microgrid_with_load(1_000.0)
        ctrl = DeferrableLoadController("dc", ci, threshold_g_per_kwh=300.0,
                                        deferrable_fraction=0.3)
        ctrl.on_step(mg, 0.0, HOUR)
        r = mg.step(0.0, HOUR)
        assert r.consumption_w == pytest.approx(700.0)
        assert ctrl.backlog_wh == pytest.approx(300.0)

    def test_replays_under_low_carbon(self):
        ci = self.ci_signal([500.0, 100.0])
        mg = microgrid_with_load(1_000.0)
        ctrl = DeferrableLoadController("dc", ci, threshold_g_per_kwh=300.0,
                                        deferrable_fraction=0.3)
        ctrl.on_step(mg, 0.0, HOUR)
        mg.step(0.0, HOUR)
        ctrl.on_step(mg, HOUR, HOUR)
        r = mg.step(HOUR, HOUR)
        assert r.consumption_w == pytest.approx(1_300.0)
        assert ctrl.backlog_wh == pytest.approx(0.0)

    def test_energy_conserved_over_cycle(self):
        """Everything shed is eventually replayed (no demand destruction)."""
        ci = self.ci_signal([500.0] * 6 + [100.0] * 18)
        mg = microgrid_with_load(1_000.0)
        ctrl = DeferrableLoadController("dc", ci, threshold_g_per_kwh=300.0,
                                        deferrable_fraction=0.25)
        served = 0.0
        for i in range(24):
            ctrl.on_step(mg, i * HOUR, HOUR)
            served += mg.step(i * HOUR, HOUR).consumption_w
        assert served == pytest.approx(24 * 1_000.0)
        assert ctrl.backlog_wh == pytest.approx(0.0)
        assert ctrl.deferred_total_wh > 0.0

    def test_rejects_non_consumer(self):
        mg = Microgrid(actors=[Actor("gen", ConstantSignal(1.0))])
        ctrl = DeferrableLoadController("gen", ConstantSignal(0.0), 100.0)
        with pytest.raises(ConfigurationError):
            ctrl.on_step(mg, 0.0, HOUR)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeferrableLoadController("dc", ConstantSignal(0.0), 100.0, deferrable_fraction=2.0)
        with pytest.raises(ConfigurationError):
            DeferrableLoadController("dc", ConstantSignal(0.0), -1.0)


class TestCarbonAwareCharge:
    def test_charges_when_clean(self):
        battery = CLCBattery(capacity_wh=100_000.0, initial_soc=0.2)
        mg = microgrid_with_load(0.0, battery=battery)
        grid = GridConnection(ConstantSignal(50.0))
        ctrl = CarbonAwareChargeController(
            ConstantSignal(50.0), charge_threshold_g_per_kwh=100.0,
            charge_power_w=10_000.0, grid=grid,
        )
        ctrl.on_step(mg, 0.0, HOUR)
        assert ctrl.grid_charge_energy_wh > 0.0
        assert grid.import_energy_wh == pytest.approx(ctrl.grid_charge_energy_wh)
        assert grid.emissions_kg > 0.0

    def test_idle_when_dirty(self):
        battery = CLCBattery(capacity_wh=100_000.0, initial_soc=0.2)
        mg = microgrid_with_load(0.0, battery=battery)
        ctrl = CarbonAwareChargeController(
            ConstantSignal(500.0), charge_threshold_g_per_kwh=100.0, charge_power_w=10_000.0
        )
        ctrl.on_step(mg, 0.0, HOUR)
        assert ctrl.grid_charge_energy_wh == 0.0

    def test_stops_at_target_soc(self):
        battery = CLCBattery(capacity_wh=10_000.0, initial_soc=0.9)
        mg = microgrid_with_load(0.0, battery=battery)
        ctrl = CarbonAwareChargeController(
            ConstantSignal(0.0), charge_threshold_g_per_kwh=100.0,
            charge_power_w=10_000.0, target_soc=0.9,
        )
        ctrl.on_step(mg, 0.0, HOUR)
        assert ctrl.grid_charge_energy_wh == 0.0

    def test_no_storage_noop(self):
        mg = microgrid_with_load(0.0, battery=None)
        ctrl = CarbonAwareChargeController(
            ConstantSignal(0.0), charge_threshold_g_per_kwh=100.0, charge_power_w=1_000.0
        )
        ctrl.on_step(mg, 0.0, HOUR)  # must not raise

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CarbonAwareChargeController(ConstantSignal(0.0), 100.0, charge_power_w=-1.0)
        with pytest.raises(ConfigurationError):
            CarbonAwareChargeController(ConstantSignal(0.0), 100.0, 1.0, target_soc=0.0)
