"""Compositions, parameter space, embodied accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.composition import MicrogridComposition
from repro.core.embodied import (
    embodied_breakdown_tonnes,
    embodied_carbon_tonnes,
)
from repro.core.parameterspace import PAPER_SPACE, ParameterSpace
from repro.exceptions import ConfigurationError


class TestComposition:
    def test_table_units(self):
        comp = MicrogridComposition(n_turbines=4, solar_kw=12_000.0, battery_units=7)
        assert comp.wind_mw == pytest.approx(12.0)
        assert comp.solar_mw == pytest.approx(12.0)
        assert comp.battery_mwh == pytest.approx(52.5)
        assert comp.battery_wh == pytest.approx(52.5e6)

    def test_from_mw_roundtrip(self):
        comp = MicrogridComposition.from_mw(12.0, 8.0, 22.5)
        assert comp.n_turbines == 4
        assert comp.solar_kw == pytest.approx(8_000.0)
        assert comp.battery_units == 3

    def test_from_mw_rejects_off_grid_values(self):
        with pytest.raises(ConfigurationError):
            MicrogridComposition.from_mw(10.0, 8.0, 22.5)  # not multiple of 3
        with pytest.raises(ConfigurationError):
            MicrogridComposition.from_mw(12.0, 8.0, 20.0)  # not multiple of 7.5

    def test_grid_only_baseline(self):
        assert MicrogridComposition(0, 0.0, 0).is_grid_only
        assert not MicrogridComposition(1, 0.0, 0).is_grid_only

    def test_label_matches_figure3_notation(self):
        comp = MicrogridComposition.from_mw(30.0, 40.0, 60.0)
        assert comp.label() == "(30, 40, 60)"

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MicrogridComposition(-1, 0.0, 0)
        with pytest.raises(ConfigurationError):
            MicrogridComposition(0, -1.0, 0)


class TestParameterSpace:
    def test_paper_space_size(self):
        """11 solar × 11 wind × 9 battery = 1 089 combinations (§4.4)."""
        assert len(PAPER_SPACE) == 1_089

    def test_enumeration_unique_and_complete(self):
        comps = PAPER_SPACE.all_compositions()
        assert len(comps) == len(set(comps)) == 1_089

    def test_bounds(self):
        comps = PAPER_SPACE.all_compositions()
        assert max(c.wind_mw for c in comps) == pytest.approx(30.0)
        assert max(c.solar_mw for c in comps) == pytest.approx(40.0)
        assert max(c.battery_mwh for c in comps) == pytest.approx(60.0)

    def test_contains(self):
        assert PAPER_SPACE.contains(MicrogridComposition.from_mw(12.0, 8.0, 22.5))
        assert not PAPER_SPACE.contains(MicrogridComposition(n_turbines=11, solar_kw=0, battery_units=0))
        assert not PAPER_SPACE.contains(MicrogridComposition(n_turbines=0, solar_kw=500.0, battery_units=0))

    def test_grid_search_space_sizes(self):
        gss = PAPER_SPACE.grid_search_space()
        assert len(gss["n_turbines"]) == 11
        assert len(gss["solar_increments"]) == 11
        assert len(gss["battery_units"]) == 9

    def test_from_params_roundtrip(self):
        comp = MicrogridComposition.from_mw(9.0, 16.0, 30.0)
        params = {
            "n_turbines": comp.n_turbines,
            "solar_increments": int(comp.solar_increments),
            "battery_units": comp.battery_units,
        }
        assert PAPER_SPACE.from_params(params) == comp

    def test_custom_space(self):
        small = ParameterSpace(max_turbines=2, max_solar_increments=2, max_battery_units=1)
        assert len(small) == 3 * 3 * 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(max_turbines=-1)
        with pytest.raises(ConfigurationError):
            ParameterSpace(solar_increment_kw=0.0)


class TestEmbodied:
    """The embodied column of Tables 1–2 must be reproduced exactly."""

    @pytest.mark.parametrize(
        "wind_mw,solar_mw,battery_mwh,expected_tco2",
        [
            (0, 0, 0.0, 0),
            (12, 0, 7.5, 4_649),       # Houston row 2
            (9, 8, 22.5, 9_573),       # Houston row 3
            (12, 12, 52.5, 14_999),    # Houston row 4
            (30, 40, 60.0, 39_380),    # Houston/Berkeley row 5
            (3, 4, 22.5, 4_961),       # Berkeley row 2
            (0, 12, 37.5, 9_885),      # Berkeley row 3
            (9, 12, 52.5, 13_953),     # Berkeley row 4
        ],
    )
    def test_paper_table_values_exact(self, wind_mw, solar_mw, battery_mwh, expected_tco2):
        comp = MicrogridComposition.from_mw(wind_mw, solar_mw, battery_mwh)
        assert embodied_carbon_tonnes(comp) == pytest.approx(expected_tco2)

    def test_breakdown_sums_to_total(self):
        comp = MicrogridComposition.from_mw(9.0, 8.0, 22.5)
        breakdown = embodied_breakdown_tonnes(comp)
        assert sum(breakdown.values()) == pytest.approx(embodied_carbon_tonnes(comp))

    def test_monotone_in_every_axis(self):
        base = MicrogridComposition(2, 8_000.0, 2)
        more_wind = MicrogridComposition(3, 8_000.0, 2)
        more_solar = MicrogridComposition(2, 12_000.0, 2)
        more_batt = MicrogridComposition(2, 8_000.0, 3)
        e0 = embodied_carbon_tonnes(base)
        assert embodied_carbon_tonnes(more_wind) > e0
        assert embodied_carbon_tonnes(more_solar) > e0
        assert embodied_carbon_tonnes(more_batt) > e0


@given(
    turbines=st.integers(min_value=0, max_value=10),
    solar_inc=st.integers(min_value=0, max_value=10),
    batteries=st.integers(min_value=0, max_value=8),
)
def test_property_embodied_is_linear(turbines, solar_inc, batteries):
    """Embodied carbon is exactly the sum of per-unit footprints."""
    comp = MicrogridComposition(turbines, solar_inc * 4_000.0, batteries)
    expected = turbines * 1_046.0 + solar_inc * 2_520.0 + batteries * 465.0
    assert embodied_carbon_tonnes(comp) == pytest.approx(expected)
