"""Lease primitive + whole-study lease semantics (DESIGN.md §13).

Fast, physics-free coverage of the cluster layer's liveness machinery:
the :class:`LeaseTable` bookkeeping core, the
:class:`LeasedWorkQueue` grant → complete → expire → reclaim lifecycle
(with a fake clock, so TTL expiry is deterministic), the first-write-
wins late-result semantics that make at-least-once dispatch safe, and
the whole-study side: ``claim_next`` reclaiming an expired study claim
automatically, with no explicit ``resume``.
"""

import pytest

from repro.core.study_spec import StudySpec
from repro.exceptions import OptimizationError
from repro.service import StudyService
from repro.service.lease import (
    DEFAULT_LEASE_TTL_S,
    Lease,
    LeaseTable,
    LeasedWorkQueue,
    _decode_outcome,
)
from repro.service.remote_worker import encode_outcome


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class TestLeaseTable:
    def test_grant_release_and_holder(self):
        clock = FakeClock()
        table = LeaseTable(ttl=10.0, clock=clock)
        lease = table.grant("k1", "w1")
        assert lease == Lease("k1", "w1", 0.0, 10.0)
        assert lease.expires_ts == 10.0
        assert table.holder("k1") == "w1"
        assert table.release("k1").owner == "w1"
        assert table.holder("k1") is None

    def test_double_grant_is_an_error(self):
        table = LeaseTable(ttl=10.0, clock=FakeClock())
        table.grant("k1", "w1")
        with pytest.raises(OptimizationError, match="already held by 'w1'"):
            table.grant("k1", "w2")

    def test_reclaim_expired_only_drops_expired_leases(self):
        clock = FakeClock()
        table = LeaseTable(ttl=10.0, clock=clock)
        table.grant("old", "w1")
        clock.advance(6.0)
        table.grant("new", "w2")
        clock.advance(5.0)  # old at 11s (expired), new at 5s (live)
        expired = table.reclaim_expired()
        assert [l.key for l in expired] == ["old"]
        assert table.holder("old") is None
        assert table.holder("new") == "w2"

    def test_ttl_must_be_positive(self):
        with pytest.raises(OptimizationError, match="positive"):
            LeaseTable(ttl=0.0)


class TestLeasedWorkQueue:
    def test_lease_complete_resolves_the_future(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        future = queue.submit_trial({"x": 1})
        [item] = queue.lease("w1", limit=5)
        assert item == {"item": "trial-0", "kind": "trial", "params": {"x": 1}}
        assert queue.complete("w1", "trial-0", "ok", [1.25, 2.5], 0.3) is True
        assert future.result(timeout=1) == ("ok", (1.25, 2.5), 0.3)

    def test_rung_items_carry_members_and_decode_nested(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        future = queue.submit_rung({"x": 1}, (0, 3))
        [item] = queue.lease("w1")
        assert item["kind"] == "rung" and item["members"] == [0, 3]
        queue.complete("w1", item["item"], "ok", [[1.0, 2.0], [3.0, 4.0]], 0.1)
        tag, payload, _ = future.result(timeout=1)
        assert (tag, payload) == ("ok", ((1.0, 2.0), (3.0, 4.0)))

    def test_lease_respects_limit_and_fifo_order(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        for i in range(3):
            queue.submit_trial({"n": i})
        first = queue.lease("w1", limit=2)
        assert [i["params"]["n"] for i in first] == [0, 1]
        assert [i["params"]["n"] for i in queue.lease("w2", limit=2)] == [2]
        assert queue.lease("w2") == []

    def test_expired_lease_is_reclaimed_and_redispatched(self):
        clock = FakeClock()
        queue = LeasedWorkQueue(ttl=2.0, clock=clock)
        future = queue.submit_trial({"x": 1})
        assert queue.lease("dead", limit=1)
        assert queue.lease("live") == []  # leased, nothing left
        clock.advance(3.0)  # dead worker's lease expires
        [item] = queue.lease("live")  # reclaim happens inside lease()
        assert item["item"] == "trial-0"
        queue.complete("live", "trial-0", "ok", [1.0, 2.0], 0.1)
        assert future.result(timeout=1)[0] == "ok"
        stats = queue.stats()
        assert stats["reclaimed"] == 1 and stats["completed"] == 1

    def test_late_result_after_reclaim_is_stale_first_write_wins(self):
        clock = FakeClock()
        queue = LeasedWorkQueue(ttl=2.0, clock=clock)
        future = queue.submit_trial({"x": 1})
        queue.lease("slow")
        clock.advance(3.0)
        queue.lease("fast")  # reclaim + re-grant
        assert queue.complete("fast", "trial-0", "ok", [1.0, 2.0], 0.1) is True
        # The presumed-dead worker's duplicate lands late: stale, ignored.
        assert queue.complete("slow", "trial-0", "ok", [1.0, 2.0], 9.9) is False
        assert future.result(timeout=1) == ("ok", (1.0, 2.0), 0.1)
        assert queue.stats()["completed"] == 1

    def test_unknown_item_is_stale_not_an_error(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        assert queue.complete("w1", "trial-99", "ok", [1.0], 0.0) is False

    def test_error_outcomes_rebuild_an_exception(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        future = queue.submit_trial({"x": 1})
        queue.lease("w1")
        queue.complete(
            "w1", "trial-0", "error",
            {"type": "ValueError", "message": "bad composition"}, 0.1,
        )
        tag, payload, _ = future.result(timeout=1)
        assert tag == "error"
        assert isinstance(payload, OptimizationError)
        assert "ValueError" in str(payload) and "bad composition" in str(payload)

    def test_shutdown_refuses_new_work_and_cancels_pending(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        future = queue.submit_trial({"x": 1})
        queue.shutdown(cancel_futures=True)
        assert future.cancelled()
        assert queue.lease("w1") == []
        with pytest.raises(OptimizationError, match="shut down"):
            queue.submit_trial({"x": 2})

    def test_stats_track_workers_and_active_leases(self):
        queue = LeasedWorkQueue(ttl=10.0, clock=FakeClock())
        queue.submit_trial({"x": 1})
        queue.submit_trial({"x": 2})
        queue.lease("w1")
        stats = queue.stats()
        assert stats == {
            "queued": 1, "leased": 1, "completed": 0, "reclaimed": 0,
            "ttl_s": 10.0, "workers": {"w1": 0}, "active_workers": ["w1"],
        }


class TestOutcomeWireFormat:
    """encode (worker) → JSON → decode (coordinator) is lossless."""

    def test_trial_floats_round_trip_exactly(self):
        import json

        values = (0.1 + 0.2, 1e-17, 123456.789012345)
        wire = json.loads(json.dumps(encode_outcome("ok", values)))
        tag, decoded = _decode_outcome("trial", "ok", wire)
        assert decoded == values  # bit-identical through repr-based JSON

    def test_rung_vectors_round_trip(self):
        wire = encode_outcome("ok", ((1.5, 2.5), (3.5, 4.5)))
        assert wire == [[1.5, 2.5], [3.5, 4.5]]
        assert _decode_outcome("rung", "ok", wire)[1] == ((1.5, 2.5), (3.5, 4.5))

    def test_pruned_and_error_payloads(self):
        assert encode_outcome("pruned", None) is None
        assert _decode_outcome("trial", "pruned", None) == ("pruned", None)
        wire = encode_outcome("error", ValueError("boom"))
        assert wire == {"type": "ValueError", "message": "boom"}


SMALL = dict(sites=("houston",), n_hours=720, n_trials=20, population=10, seed=7)


class TestTransportKnobs:
    """remote_slots / lease_ttl are non-identity metadata, like engine."""

    def test_round_trip_through_metadata(self):
        spec = StudySpec(remote_slots=3, lease_ttl=45.0, **SMALL)
        md = spec.to_metadata()
        assert md["transport"] == {"slots": 3, "lease_ttl_s": 45.0}
        again = StudySpec.from_metadata(md)
        assert (again.remote_slots, again.lease_ttl) == (3, 45.0)

    def test_remote_slots_implies_the_pipelined_driver(self):
        spec = StudySpec(remote_slots=2, **SMALL)
        assert spec.pipeline == "speculate=0"
        explicit = StudySpec(remote_slots=2, pipeline="speculate=3", **SMALL)
        assert explicit.pipeline == "speculate=3"

    def test_transport_changes_are_not_resume_identity(self):
        persisted = StudySpec(remote_slots=4, lease_ttl=60.0, **SMALL).to_metadata()
        # Resuming with different slots/TTL — or none at all — is fine;
        # only the pipeline spec (which transport pinned) must match.
        StudySpec(remote_slots=1, lease_ttl=5.0, **SMALL).validate_resume(persisted)
        StudySpec(pipeline="speculate=0", **SMALL).validate_resume(persisted)
        with pytest.raises(OptimizationError, match="pipeline"):
            StudySpec(remote_slots=4, pipeline="speculate=2", **SMALL).validate_resume(
                persisted
            )

    def test_transport_knob_validation(self):
        with pytest.raises(OptimizationError, match="remote_slots"):
            StudySpec(remote_slots=0, **SMALL)
        with pytest.raises(OptimizationError, match="lease_ttl"):
            StudySpec(lease_ttl=-1.0, **SMALL)

    def test_default_ttl_is_sane(self):
        assert DEFAULT_LEASE_TTL_S > 0


class TestStudyClaimLease:
    """Whole-study claims carry the same lease semantics: an expired
    claim (dead worker) is reclaimed by ``claim_next`` automatically —
    the no-manual-resume half of DESIGN.md §13."""

    def _running_study(self, service, name, heartbeat_age):
        service.submit(StudySpec(**SMALL), name)
        stored = service.storage.load_study(name)
        md = dict(stored.metadata)
        md["service"] = {
            "state": "running",
            "started_ts": service._clock() - heartbeat_age,
            "worker": "dead-host",
        }
        md["heartbeat_ts"] = service._clock() - heartbeat_age
        service.storage.update_metadata(name, md)

    def test_expired_claim_is_reclaimed_without_resume(self):
        service = StudyService("memory://", stale_after=10.0)
        self._running_study(service, "s1", heartbeat_age=60.0)
        assert service.claim_next("rescuer") == "s1"
        envelope = service.status("s1")["service"]
        assert envelope["state"] == "running"
        assert envelope["worker"] == "rescuer"
        assert envelope["reclaims"] == 1
        assert envelope["reclaimed_from"] == "dead-host"

    def test_live_claim_is_never_reclaimed(self):
        service = StudyService("memory://", stale_after=1e9)
        self._running_study(service, "s1", heartbeat_age=60.0)
        assert service.claim_next("rescuer") is None

    def test_queued_studies_win_over_reclaims(self):
        service = StudyService("memory://", stale_after=10.0)
        self._running_study(service, "stuck", heartbeat_age=60.0)
        service.submit(StudySpec(**{**SMALL, "seed": 8}), "fresh")
        assert service.claim_next("w") == "fresh"
        assert service.claim_next("w") == "stuck"

    def test_reclaim_counter_accumulates(self):
        service = StudyService("memory://", stale_after=10.0)
        self._running_study(service, "s1", heartbeat_age=60.0)
        assert service.claim_next("r1") == "s1"
        # The rescuer dies too: age its liveness past the lease again.
        stored = service.storage.load_study("s1")
        md = dict(stored.metadata)
        md["service"]["started_ts"] -= 100.0
        md["heartbeat_ts"] -= 100.0
        service.storage.update_metadata("s1", md)
        assert service.claim_next("r2") == "s1"
        assert service.status("s1")["service"]["reclaims"] == 2
