"""The vectorized dispatch engine (DESIGN.md §5).

Covers what the cross-validation suite does not: the stacked
multi-scenario loop's bit-for-bit equivalence with serial evaluation,
per-step power conservation for every policy, the trace mode behind
``soc_history``, the policy registry, robust aggregation, and the
multi-scenario study wiring (runner, picklable objective, CLI flags).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.composition import MicrogridComposition
from repro.core.dispatch import (
    ISLANDED_EPS_W,
    POLICY_NAMES,
    CarbonAwareDispatch,
    DefaultDispatch,
    IslandedDispatch,
    TimeWindowDispatch,
    TouArbitrageDispatch,
    make_policy,
    run_dispatch,
    stack_scenarios,
)
from repro.core.kernel import HAS_NUMBA
from repro.core.fastsim import BatchEvaluator, coverage_grid, evaluate_across_scenarios
from repro.core.metrics import (
    COMPARABLE_METRIC_FIELDS as METRIC_FIELDS,
    RobustEvaluatedComposition,
    robust_evaluations,
)
from repro.core.parameterspace import PAPER_SPACE, ParameterSpace
from repro.core.study_runner import CompositionObjective, OptimizationRunner
from repro.exceptions import ConfigurationError
from repro.sam.batterymodels.clc import CLCParameters

COMPS = [
    MicrogridComposition(0, 0.0, 0),
    MicrogridComposition.from_mw(12.0, 0.0, 7.5),
    MicrogridComposition.from_mw(9.0, 8.0, 22.5),
    MicrogridComposition.from_mw(30.0, 40.0, 60.0),
    MicrogridComposition.from_mw(6.0, 4.0, 0.0),
]

class TestStackedEquivalence:
    def test_two_scenarios_bitwise_equal_to_serial(self, houston_month, berkeley_month):
        """The (S, N) stacked loop reproduces per-scenario serial results
        bit-for-bit — stacking scenarios cannot change any number."""
        scenarios = [houston_month, berkeley_month]
        comps = PAPER_SPACE.all_compositions()
        stacked = evaluate_across_scenarios(scenarios, comps)
        for s, scenario in enumerate(scenarios):
            serial = BatchEvaluator(scenario).evaluate(comps)
            for e_serial, e_stacked in zip(serial, stacked[s]):
                for name in METRIC_FIELDS:
                    assert getattr(e_serial.metrics, name) == getattr(
                        e_stacked.metrics, name
                    ), (scenario.name, e_serial.composition, name)

    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_stacked_equivalence_holds_per_policy(
        self, policy_name, houston_month, berkeley_month
    ):
        scenarios = [houston_month, berkeley_month]
        policy = make_policy(policy_name, scenarios)
        stacked = evaluate_across_scenarios(scenarios, COMPS, policy=policy)
        for s, scenario in enumerate(scenarios):
            # A single-scenario policy must carry that scenario's own
            # thresholds, i.e. row s of the stacked policy's arrays.
            solo = BatchEvaluator(
                scenario, policy=_row_policy(policy, s)
            ).evaluate(COMPS)
            for e_serial, e_stacked in zip(solo, stacked[s]):
                for name in METRIC_FIELDS:
                    assert getattr(e_serial.metrics, name) == getattr(
                        e_stacked.metrics, name
                    )

    def test_misaligned_scenarios_rejected(self, houston_month, houston):
        with pytest.raises(ConfigurationError, match="misaligned"):
            stack_scenarios([houston_month, houston])

    def test_empty_compositions(self, houston_month, berkeley_month):
        assert evaluate_across_scenarios([houston_month, berkeley_month], []) == [[], []]


def _row_policy(policy, s):
    """Single-scenario variant of a stacked policy (row s thresholds)."""
    if isinstance(policy, CarbonAwareDispatch):
        return CarbonAwareDispatch(float(np.asarray(policy.ci_discharge_g_per_kwh).reshape(-1)[s]))
    if isinstance(policy, TouArbitrageDispatch):
        return TouArbitrageDispatch(
            float(np.asarray(policy.charge_price_usd_kwh).reshape(-1)[s]),
            float(np.asarray(policy.discharge_price_usd_kwh).reshape(-1)[s]),
        )
    return policy


ENGINE_MATRIX = [
    "loop",
    "segments",
    pytest.param(
        "njit",
        marks=pytest.mark.skipif(
            not HAS_NUMBA,
            reason="numba not installed — the njit engine leg runs on the CI numba job",
        ),
    ),
]

RESULT_FIELDS = (
    "import_wh",
    "export_wh",
    "charge_wh",
    "discharge_wh",
    "unserved_wh",
    "emissions_kg",
    "cost_usd",
    "islanded_steps",
)


class TestEngineMatrix:
    """Every engine must be a pure throughput knob (DESIGN.md §9)."""

    @pytest.mark.parametrize("engine", ENGINE_MATRIX)
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_engines_bitwise_equal_per_policy(
        self, engine, policy_name, houston_month, berkeley_month
    ):
        scenarios = [houston_month, berkeley_month]
        policy = make_policy(policy_name, scenarios)
        ref = evaluate_across_scenarios(scenarios, COMPS, policy=policy, engine="loop")
        got = evaluate_across_scenarios(scenarios, COMPS, policy=policy, engine=engine)
        for row_ref, row_got in zip(ref, got):
            for e_ref, e_got in zip(row_ref, row_got):
                for name in METRIC_FIELDS:
                    assert getattr(e_got.metrics, name) == getattr(
                        e_ref.metrics, name
                    ), (engine, policy_name, e_ref.composition, name)

    def test_auto_engine_never_silently_changes_results(self, houston_month):
        """Tier-1 guard: the default ``engine="auto"`` is bit-for-bit the
        reference loop through the public evaluation API."""
        auto = evaluate_across_scenarios([houston_month], COMPS)
        loop = evaluate_across_scenarios([houston_month], COMPS, engine="loop")
        for e_auto, e_loop in zip(auto[0], loop[0]):
            for name in METRIC_FIELDS:
                assert getattr(e_auto.metrics, name) == getattr(e_loop.metrics, name)


def _legacy_run_dispatch(stack, solar_kw, turbine_factor, capacity_wh, params, policy):
    """The reference loop as written before the profile-slice hoist.

    Re-slices the strided (S, T) profile columns every step — the exact
    code shape ``run_dispatch`` used before hoisting time-major copies
    out of the loop.  Pins that the hoist changed no bits.
    """
    from repro.sam.batterymodels.clc import clc_step_arrays
    from repro.units import SECONDS_PER_HOUR, WH_PER_KWH

    n = int(solar_kw.size)
    s, t_steps = stack.n_scenarios, stack.n_steps
    dt_s = stack.step_s
    dt_h = dt_s / SECONDS_PER_HOUR
    cap = np.asarray(capacity_wh, dtype=np.float64)
    safe_cap = np.maximum(cap, 1e-12)
    soc0 = float(np.clip(0.5, params.soc_min, params.soc_max))
    energy_wh = np.broadcast_to(cap * soc0, (s, n)).copy()
    totals = {name: np.zeros((s, n)) for name in RESULT_FIELDS}
    zeros_sn = np.zeros((s, n))
    eps_wh = ISLANDED_EPS_W * dt_h
    for t in range(t_steps):
        gen_t = (
            stack.solar_per_kw_w[:, t][:, None] * solar_kw
            + stack.wind_per_turbine_w[:, t][:, None] * turbine_factor
        )
        net_t = gen_t - stack.load_w[:, t][:, None]
        request = policy.dispatch_arrays(
            net_t,
            energy_wh / safe_cap,
            stack.prices_usd_kwh[:, t][:, None],
            stack.ci_g_per_kwh[:, t][:, None],
            t * dt_s,
            dt_s,
        )
        accepted, energy_wh = clc_step_arrays(
            cap,
            energy_wh,
            request,
            dt_s,
            eta_charge=params.eta_charge,
            eta_discharge=params.eta_discharge,
            max_charge_c_rate=params.max_charge_c_rate,
            max_discharge_c_rate=params.max_discharge_c_rate,
            taper_soc_threshold=params.taper_soc_threshold,
            soc_min=params.soc_min,
            soc_max=params.soc_max,
            self_discharge_per_hour=params.self_discharge_per_hour,
        )
        residual = net_t - accepted
        if policy.islanded:
            imp_t = zeros_sn
            uns_t = np.maximum(-residual, 0.0) * dt_h
        else:
            imp_t = np.maximum(-residual, 0.0) * dt_h
            uns_t = zeros_sn
        exp_t = np.maximum(residual, 0.0) * dt_h
        totals["import_wh"] += imp_t
        totals["export_wh"] += exp_t
        totals["unserved_wh"] += uns_t
        totals["charge_wh"] += np.maximum(accepted, 0.0) * dt_h
        totals["discharge_wh"] += np.maximum(-accepted, 0.0) * dt_h
        totals["emissions_kg"] += imp_t / WH_PER_KWH * stack.ci_g_per_kwh[:, t][:, None] / 1_000.0
        totals["cost_usd"] += (
            imp_t / WH_PER_KWH * stack.prices_usd_kwh[:, t][:, None]
            - exp_t / WH_PER_KWH * stack.export_credit_usd_kwh
        )
        totals["islanded_steps"] += (imp_t <= eps_wh) & (uns_t <= eps_wh)
    return totals


class TestProfileSliceHoist:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_hoisted_loop_bitwise_equals_prehoist_slicing(
        self, policy_name, houston_month, berkeley_month
    ):
        scenarios = [houston_month, berkeley_month]
        stack = stack_scenarios(scenarios)
        policy = make_policy(policy_name, scenarios)
        solar_kw = np.array([c.solar_kw for c in COMPS])
        turb = np.array([float(c.n_turbines) for c in COMPS])
        cap = np.array([c.battery_wh for c in COMPS])
        params = CLCParameters(capacity_wh=1.0)
        res = run_dispatch(
            stack, solar_kw, turb, cap, params, policy=policy, engine="loop"
        )
        legacy = _legacy_run_dispatch(stack, solar_kw, turb, cap, params, policy)
        for name in RESULT_FIELDS:
            np.testing.assert_array_equal(
                getattr(res, name), legacy[name], err_msg=(policy_name, name)
            )


class TestConservation:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_dispatch_conserves_power_each_step(self, policy_name, houston_month):
        """import + unserved − export + discharge − charge = −net, per step."""
        scenario = houston_month
        stack = stack_scenarios([scenario])
        policy = make_policy(policy_name, [scenario])
        solar_kw = np.array([c.solar_kw for c in COMPS])
        turb = np.array([float(c.n_turbines) for c in COMPS])  # wake factor ≤ n is fine here
        cap = np.array([c.battery_wh for c in COMPS])
        res = run_dispatch(
            stack,
            solar_kw,
            turb,
            cap,
            CLCParameters(capacity_wh=1.0),
            policy=policy,
            trace_flows=True,
        )
        f = res.flows
        residual = (
            f["import_w"]
            + f["unserved_w"]
            - f["export_w"]
            + f["discharge_w"]
            - f["charge_w"]
            + f["net_w"]
        )
        assert np.abs(residual).max() < 1e-3  # W, at MW scale

    @pytest.mark.parametrize("policy_name", sorted(set(POLICY_NAMES) - {"islanded"}))
    def test_grid_connected_policies_serve_all_demand(self, policy_name, houston_month):
        evaluated = BatchEvaluator(
            houston_month, policy=make_policy(policy_name, [houston_month])
        ).evaluate(COMPS)
        for e in evaluated:
            assert e.metrics.unserved_energy_wh == 0.0

    def test_islanded_never_imports(self, houston_month):
        evaluated = BatchEvaluator(houston_month, policy=IslandedDispatch()).evaluate(COMPS)
        for e in evaluated:
            assert e.metrics.grid_import_wh == 0.0
            assert e.metrics.operational_emissions_kg == 0.0


class TestTraceMode:
    def test_soc_history_matches_scalar_recurrence(self, houston_month):
        """Trace-mode SoC equals the per-step scalar C/L/C recurrence."""
        from repro.sam.batterymodels.clc import clc_step
        from repro.sam.wind.wake import jensen_array_efficiency

        sc = houston_month
        comp = MicrogridComposition.from_mw(9.0, 8.0, 22.5)
        be = BatchEvaluator(sc)
        traced = be.soc_history(comp)

        p = CLCParameters(capacity_wh=comp.battery_wh)
        eff = comp.n_turbines * jensen_array_efficiency(comp.n_turbines)
        net = (
            sc.solar_per_kw_w * comp.solar_kw
            + sc.wind_per_turbine_w * eff
            - sc.workload.power_w
        )
        energy = comp.battery_wh * 0.5
        expected = [0.5]
        for t in range(sc.n_steps):
            _, energy = clc_step(p, energy, float(net[t]), sc.step_s)
            expected.append(energy / comp.battery_wh)
        np.testing.assert_allclose(traced, expected, rtol=0, atol=1e-12)

    def test_soc_histories_batch_shape_and_consistency(self, houston_month):
        be = BatchEvaluator(houston_month)
        traces = be.soc_histories(COMPS)
        assert traces.shape == (houston_month.n_steps + 1, len(COMPS))
        # column for the mixed build-out equals the single-comp trace
        np.testing.assert_array_equal(traces[:, 2], be.soc_history(COMPS[2]))

    def test_soc_history_no_battery_is_flat_zero(self, houston_month):
        soc = BatchEvaluator(houston_month).soc_history(MicrogridComposition(1, 0.0, 0))
        assert soc.shape == (houston_month.n_steps + 1,)
        assert np.all(soc == 0.0)


class TestCoverageGridChunking:
    def test_chunking_is_equivalent(self, houston_month):
        solar = [0.0, 8_000.0, 24_000.0]
        wind = [0, 2, 6]
        full = coverage_grid(houston_month, solar, wind, chunk_steps=10**9)
        chunked = coverage_grid(houston_month, solar, wind, chunk_steps=97)
        np.testing.assert_allclose(chunked, full, rtol=1e-12)

    def test_invalid_chunk_size(self, houston_month):
        with pytest.raises(ConfigurationError):
            coverage_grid(houston_month, [0.0], [0], chunk_steps=0)


class TestPolicyRegistry:
    def test_known_names(self):
        assert set(POLICY_NAMES) == {
            "default",
            "islanded",
            "time_window",
            "carbon_aware",
            "tou_arbitrage",
        }

    def test_unknown_name_rejected(self, houston_month):
        with pytest.raises(ConfigurationError, match="unknown dispatch policy"):
            make_policy("gradient_descent", [houston_month])

    def test_needs_scenarios(self):
        with pytest.raises(ConfigurationError):
            make_policy("default", [])

    def test_per_scenario_thresholds(self, houston_month, berkeley_month):
        tou = make_policy("tou_arbitrage", [houston_month, berkeley_month])
        assert np.asarray(tou.charge_price_usd_kwh).shape == (2, 1)
        assert float(np.asarray(tou.charge_price_usd_kwh)[0, 0]) == pytest.approx(
            houston_month.tariff.off_peak_usd_kwh
        )
        ca = make_policy("carbon_aware", [houston_month, berkeley_month])
        thresholds = np.asarray(ca.ci_discharge_g_per_kwh).reshape(-1)
        # Houston/ERCOT is the dirtier grid: higher median CI threshold.
        assert thresholds[0] > thresholds[1]

    def test_tou_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            TouArbitrageDispatch(charge_price_usd_kwh=0.3, discharge_price_usd_kwh=0.2)

    def test_time_window_validation(self):
        with pytest.raises(ConfigurationError):
            TimeWindowDispatch(discharge_start_h=25.0)

    def test_policies_are_picklable(self, houston_month, berkeley_month):
        for name in POLICY_NAMES:
            policy = make_policy(name, [houston_month, berkeley_month])
            clone = pickle.loads(pickle.dumps(policy))
            assert type(clone) is type(policy)


class TestRobustAggregation:
    def test_worst_and_mean(self, houston_month, berkeley_month):
        per_scenario = evaluate_across_scenarios(
            [houston_month, berkeley_month], COMPS
        )
        worst = robust_evaluations(per_scenario, "worst")
        mean = robust_evaluations(per_scenario, "mean")
        names = ("operational", "cost")
        for i in range(len(COMPS)):
            vectors = np.array([per_scenario[s][i].objectives(names) for s in range(2)])
            np.testing.assert_allclose(worst[i].objectives(names), vectors.max(axis=0))
            np.testing.assert_allclose(mean[i].objectives(names), vectors.mean(axis=0))
            assert worst[i].composition == COMPS[i]
            assert worst[i].scenario_objectives(names) == tuple(
                tuple(v) for v in vectors
            )

    def test_embodied_is_scenario_invariant(self, houston_month, berkeley_month):
        per_scenario = evaluate_across_scenarios(
            [houston_month, berkeley_month], [COMPS[3]]
        )
        robust = robust_evaluations(per_scenario, "worst")[0]
        assert robust.embodied_tonnes == per_scenario[0][0].embodied_tonnes

    def test_unknown_aggregate_rejected(self, houston_month, berkeley_month):
        per_scenario = evaluate_across_scenarios([houston_month], [COMPS[0]])
        with pytest.raises(ConfigurationError, match="unknown aggregate"):
            robust_evaluations(per_scenario, "median")

    def test_misaligned_rows_rejected(self, houston_month, berkeley_month):
        per_scenario = evaluate_across_scenarios(
            [houston_month, berkeley_month], COMPS
        )
        with pytest.raises(ConfigurationError, match="misaligned"):
            robust_evaluations([per_scenario[0], per_scenario[1][:-1]])


SMALL_SPACE = ParameterSpace(
    max_turbines=2, max_solar_increments=2, max_battery_units=1
)


class TestMultiScenarioStudyWiring:
    def test_runner_exhaustive_multi_site(self, houston_month, berkeley_month):
        runner = OptimizationRunner(
            [houston_month, berkeley_month], space=SMALL_SPACE, aggregate="worst"
        )
        result = runner.run_exhaustive()
        assert len(result.evaluated) == len(SMALL_SPACE)
        assert all(isinstance(e, RobustEvaluatedComposition) for e in result.evaluated)
        front = result.front(("embodied", "operational"))
        assert 0 < len(front) <= len(result.evaluated)

    def test_runner_single_site_unchanged(self, houston_month):
        result = OptimizationRunner(houston_month, space=SMALL_SPACE).run_exhaustive()
        assert not any(
            isinstance(e, RobustEvaluatedComposition) for e in result.evaluated
        )

    def test_runner_blackbox_multi_site_with_policy(self, houston_month, berkeley_month):
        scenarios = [houston_month, berkeley_month]
        runner = OptimizationRunner(
            scenarios,
            space=SMALL_SPACE,
            policy=make_policy("carbon_aware", scenarios),
            aggregate="mean",
        )
        result = runner.run_blackbox(n_trials=8, batch_size=4, seed=7)
        assert len(result.study.trials) == 8
        assert result.study.study_name == "houston-berkeley-blackbox"
        # objectives told to the sampler are the robust aggregates
        evaluated = {e.composition: e for e in result.evaluated}
        for trial in result.study.trials:
            comp = SMALL_SPACE.from_params(trial.params)
            assert trial.values == pytest.approx(
                evaluated[comp].objectives(("operational", "embodied"))
            )

    def test_composition_objective_multi_site_picklable(
        self, houston_month, berkeley_month
    ):
        objective = CompositionObjective(
            scenario=(houston_month, berkeley_month),
            space=SMALL_SPACE,
            objectives=("operational", "cost"),
            policy=make_policy("tou_arbitrage", [houston_month, berkeley_month]),
            aggregate="worst",
        )
        clone = pickle.loads(pickle.dumps(objective))
        params = {"n_turbines": 1, "solar_increments": 2, "battery_units": 1}
        assert clone(params) == pytest.approx(objective(params))
        # equals the hand-built robust evaluation
        comp = SMALL_SPACE.from_params(params)
        per_scenario = evaluate_across_scenarios(
            [houston_month, berkeley_month], [comp], policy=objective.policy
        )
        expected = robust_evaluations(per_scenario, "worst")[0].objectives(
            ("operational", "cost")
        )
        assert objective(params) == pytest.approx(expected)

    def test_composition_objective_cosim_uses_policy_twin(self, houston_month):
        policy = make_policy("time_window", [houston_month])
        objective = CompositionObjective(
            scenario=houston_month, space=SMALL_SPACE, cosim=True, policy=policy
        )
        fast = CompositionObjective(
            scenario=houston_month, space=SMALL_SPACE, policy=policy
        )
        params = {"n_turbines": 2, "solar_increments": 1, "battery_units": 1}
        assert objective(params) == pytest.approx(fast(params), rel=1e-9)


class TestCliFlags:
    def test_study_run_multi_site_and_status(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "robust.jsonl"
        rc = main(
            [
                "study",
                "run",
                "--journal",
                str(journal),
                "--sites",
                "berkeley,houston",
                "--policy",
                "tou_arbitrage",
                "--aggregate",
                "worst",
                "--trials",
                "6",
                "--population",
                "3",
                "--seed",
                "11",
                "--set",
                "scenario.n_hours=240",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "berkeley-houston-blackbox" in out
        assert main(["study", "status", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "sites: berkeley,houston" in out
        assert "policy: tou_arbitrage" in out
        assert "aggregate: worst" in out

    def test_study_resume_rebuilds_multi_site_runner(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "robust.jsonl"
        args = [
            "study",
            "run",
            "--journal",
            str(journal),
            "--sites",
            "berkeley,houston",
            "--policy",
            "carbon_aware",
            "--aggregate",
            "mean",
            "--trials",
            "4",
            "--population",
            "2",
            "--seed",
            "3",
            "--set",
            "scenario.n_hours=240",
        ]
        assert main(args) == 0
        capsys.readouterr()
        # resume with a higher target continues the same robust study
        assert (
            main(
                ["study", "resume", "--journal", str(journal), "--trials", "6"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "6 trials" in out
