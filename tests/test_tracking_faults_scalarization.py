"""Newer extensions: single-axis tracking, fault injection, scalarization."""

import numpy as np
import pytest

from repro.blackbox import ScalarizationSampler, create_study
from repro.blackbox.multiobjective import hypervolume_2d
from repro.cosim import (
    Actor,
    ConstantSignal,
    Microgrid,
    OutageInjector,
    OutageWindow,
    random_outage_schedule,
)
from repro.data import BERKELEY, synthesize_solar_resource
from repro.exceptions import ConfigurationError, OptimizationError
from repro.sam.solar.geometry import solar_position
from repro.sam.solar.pvwatts import PVWattsModel, PVWattsParameters
from repro.sam.solar.tracking import single_axis_orientation

HOUR = 3600.0


class TestTracking:
    @pytest.fixture(scope="class")
    def solar(self):
        times = np.arange(72) * HOUR
        return solar_position(times, BERKELEY.latitude_deg, BERKELEY.longitude_deg,
                              BERKELEY.timezone_hours)

    def test_rotation_within_limits(self, solar):
        orientation = single_axis_orientation(solar, max_rotation_deg=45.0)
        assert np.all(np.abs(orientation.rotation_deg) <= 45.0)
        assert np.all(orientation.tilt_deg >= 0.0)

    def test_morning_faces_east_afternoon_west(self, solar):
        orientation = single_axis_orientation(solar)
        assert orientation.azimuth_deg[8] == 90.0    # 8am local → east
        assert orientation.azimuth_deg[16] == 270.0  # 4pm local → west

    def test_stows_flat_at_night(self, solar):
        orientation = single_axis_orientation(solar)
        assert orientation.tilt_deg[0] == 0.0  # midnight

    def test_tracker_beats_fixed_annual_energy(self):
        resource = synthesize_solar_resource(BERKELEY)
        fixed = PVWattsModel(PVWattsParameters(dc_capacity_kw=1_000.0)).run(resource)
        tracked = PVWattsModel(
            PVWattsParameters(dc_capacity_kw=1_000.0, array_type="single_axis")
        ).run(resource)
        gain = tracked.annual_energy_kwh / fixed.annual_energy_kwh
        assert 1.10 < gain < 1.35  # typical single-axis uplift

    def test_validation(self, solar):
        with pytest.raises(ConfigurationError):
            single_axis_orientation(solar, max_rotation_deg=0.0)
        with pytest.raises(ConfigurationError):
            PVWattsParameters(dc_capacity_kw=1.0, array_type="dual_axis")


class TestFaults:
    def microgrid(self):
        return Microgrid(
            actors=[
                Actor("gen", ConstantSignal(1_000.0)),
                Actor("load", ConstantSignal(500.0), is_consumer=True),
            ]
        )

    def test_outage_disables_actor(self):
        mg = self.microgrid()
        injector = OutageInjector("gen", [OutageWindow(2 * HOUR, 4 * HOUR)])
        imports = []
        for i in range(6):
            injector.on_step(mg, i * HOUR, HOUR)
            imports.append(mg.step(i * HOUR, HOUR).grid_import_w)
        # Only hours 2 and 3 lose the generator.
        assert imports[0] == 0.0 and imports[1] == 0.0
        assert imports[2] == pytest.approx(500.0)
        assert imports[3] == pytest.approx(500.0)
        assert imports[4] == 0.0
        assert injector.outage_steps == 2

    def test_actor_reenabled_after_outage(self):
        mg = self.microgrid()
        injector = OutageInjector("gen", [OutageWindow(0.0, HOUR)])
        injector.on_step(mg, 0.0, HOUR)
        assert not mg.actor("gen").enabled
        injector.on_step(mg, HOUR, HOUR)
        assert mg.actor("gen").enabled

    def test_random_schedule_statistics(self):
        horizon = 8_760 * HOUR
        windows = random_outage_schedule(horizon, mtbf_hours=500.0, mttr_hours=50.0,
                                         name="turbine-1")
        assert windows  # ~16 failures expected
        downtime_h = sum((w.end_s - w.start_s) for w in windows) / HOUR
        availability = 1.0 - downtime_h / 8_760.0
        # Two-state model availability = MTBF/(MTBF+MTTR) ≈ 0.909.
        assert 0.82 < availability < 0.97

    def test_random_schedule_deterministic(self):
        a = random_outage_schedule(1e6, 100.0, 10.0, name="x")
        b = random_outage_schedule(1e6, 100.0, 10.0, name="x")
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OutageWindow(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            random_outage_schedule(1e6, -1.0, 10.0)


class TestScalarizationSampler:
    def biobjective(self, trial):
        x = trial.suggest_float("x", 0.0, 1.0)
        y = trial.suggest_float("y", 0.0, 1.0)
        g = 1.0 + 9.0 * y
        return x, g * (1.0 - np.sqrt(x / g))

    def test_finds_reasonable_front(self):
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=ScalarizationSampler(seed=3, n_startup_trials=20),
        )
        study.optimize(self.biobjective, n_trials=250)
        front = np.array([t.values for t in study.best_trials])
        hv = hypervolume_2d(front, np.array([1.1, 10.1]))
        # Random search reaches ~9.5–10 here; scalarization should too.
        assert hv > 9.0

    def test_respects_domains(self):
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=ScalarizationSampler(seed=4, n_startup_trials=5),
        )

        def objective(trial):
            a = trial.suggest_int("a", 0, 10, step=5)
            return float(a), float(10 - a)

        study.optimize(objective, n_trials=40)
        assert all(t.params["a"] in (0, 5, 10) for t in study.completed_trials())

    def test_validation(self):
        with pytest.raises(OptimizationError):
            ScalarizationSampler(n_startup_trials=0)
        with pytest.raises(OptimizationError):
            ScalarizationSampler(mutation_prob=0.0)
