"""Search drivers: exhaustive and black-box composition search."""

import pytest

from repro.blackbox import NSGA2Sampler, RandomSampler
from repro.core.parameterspace import ParameterSpace
from repro.core.study_runner import (
    OptimizationRunner,
    run_blackbox_search,
    run_exhaustive_search,
)
from repro.exceptions import OptimizationError

SMALL_SPACE = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=3)


class TestExhaustive:
    def test_covers_space(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        result = runner.run_exhaustive()
        assert len(result.evaluated) == len(SMALL_SPACE)
        assert result.n_simulations == len(SMALL_SPACE)

    def test_front_nonempty_and_anchored(self, houston_month):
        result = run_exhaustive_search(houston_month, space=SMALL_SPACE)
        front = result.front()
        assert front
        # The grid-only baseline is always on the front (0 embodied).
        assert front[0].composition.is_grid_only


class TestBlackbox:
    def test_runs_and_caches(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        result = runner.run_blackbox(
            n_trials=60, sampler=NSGA2Sampler(population_size=10, seed=3)
        )
        assert result.study is not None
        assert len(result.study.trials) == 60
        # GA revisits elites → strictly fewer simulations than trials.
        assert result.n_simulations <= 60
        assert len(result.evaluated) == result.n_simulations

    def test_recovery_rate_bounds(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        exhaustive = runner.run_exhaustive()
        found = runner.run_blackbox(
            n_trials=80, sampler=NSGA2Sampler(population_size=10, seed=7)
        )
        rate = runner.recovery_rate(found, exhaustive)
        assert 0.0 <= rate <= 1.0
        assert rate > 0.3  # sanity: the GA finds a meaningful share

    def test_shared_cache_across_modes(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        runner.run_exhaustive()
        before = runner.n_simulations
        runner.run_blackbox(n_trials=30, sampler=RandomSampler(seed=1))
        # Every composition was already simulated by the exhaustive pass.
        assert runner.n_simulations == before

    def test_convenience_wrapper(self, houston_month):
        result = run_blackbox_search(
            houston_month, n_trials=30, population_size=8, seed=2, space=SMALL_SPACE
        )
        assert result.study is not None

    def test_validation(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        with pytest.raises(OptimizationError):
            runner.run_blackbox(n_trials=0)


class TestPersistedSearchMetadata:
    """run_blackbox persists the search parameters resume needs —
    a direct runner call (no CLI metadata) must leave a resumable store."""

    def test_metadata_filled_for_direct_runner_calls(self, houston_month):
        from repro.blackbox import InMemoryStorage

        storage = InMemoryStorage()
        OptimizationRunner(houston_month, space=SMALL_SPACE).run_blackbox(
            n_trials=20,
            sampler=NSGA2Sampler(population_size=10, seed=5),
            storage=storage,
            study_name="direct",
        )
        md = storage.load_study("direct").metadata
        assert md["n_trials"] == 20
        assert md["population"] == 10
        assert md["seed"] == 5
        assert md["batch"] == 10

    def test_caller_metadata_wins_over_defaults(self, houston_month):
        from repro.blackbox import InMemoryStorage

        storage = InMemoryStorage()
        OptimizationRunner(houston_month, space=SMALL_SPACE).run_blackbox(
            n_trials=20,
            sampler=NSGA2Sampler(population_size=10, seed=5),
            storage=storage,
            study_name="direct",
            metadata={"n_trials": 20, "site": "houston"},
        )
        md = storage.load_study("direct").metadata
        assert md["site"] == "houston"
        assert md["batch"] == 10  # the gap the runner fills

    def test_storage_accepts_spec_strings(self, houston_month, tmp_path):
        spec = str(tmp_path / "study.db")
        result = OptimizationRunner(houston_month, space=SMALL_SPACE).run_blackbox(
            n_trials=10,
            sampler=NSGA2Sampler(population_size=5, seed=1),
            storage=spec,
            study_name="via-spec",
        )
        from repro.blackbox import SQLiteStorage

        stored = SQLiteStorage(spec).load_study("via-spec")
        assert len(stored.finished_trials()) == len(result.study.trials) == 10


class TestResumeBatchAlignment:
    """Regression: resuming with a different population/batch than the
    original run used to trim generations at the *new* boundary, handing
    the sampler a history no uninterrupted run ever saw."""

    def _run(self, scenario, storage, n_trials, population, load_if_exists=False):
        return OptimizationRunner(scenario, space=SMALL_SPACE).run_blackbox(
            n_trials=n_trials,
            sampler=NSGA2Sampler(population_size=population, seed=3),
            storage=storage,
            study_name="align",
            load_if_exists=load_if_exists,
        )

    def test_mismatched_batch_on_resume_is_a_hard_error(self, houston_month, tmp_path):
        from repro.blackbox import JournalStorage

        path = tmp_path / "journal.jsonl"
        self._run(houston_month, JournalStorage(path), n_trials=15, population=10)
        with pytest.raises(OptimizationError, match="batch/population"):
            self._run(
                houston_month, JournalStorage(path), n_trials=30, population=8,
                load_if_exists=True,
            )

    def test_matching_batch_resumes_cleanly(self, houston_month, tmp_path):
        from repro.blackbox import JournalStorage

        path = tmp_path / "journal.jsonl"
        self._run(houston_month, JournalStorage(path), n_trials=15, population=10)
        resumed = self._run(
            houston_month, JournalStorage(path), n_trials=30, population=10,
            load_if_exists=True,
        )
        assert len(resumed.study.trials) == 30

    def test_legacy_store_without_batch_metadata_still_resumes(
        self, houston_month, tmp_path
    ):
        # Pre-contract journals carry no "batch" key; resume falls back
        # to the current call's batch size (the historical behaviour).
        import json

        from repro.blackbox import JournalStorage

        path = tmp_path / "journal.jsonl"
        self._run(houston_month, JournalStorage(path), n_trials=15, population=10)
        lines = path.read_text().splitlines()
        create = json.loads(lines[0])
        for key in ("batch", "population", "seed", "n_trials"):
            create["metadata"].pop(key, None)
        path.write_text("\n".join([json.dumps(create)] + lines[1:]) + "\n")

        resumed = self._run(
            houston_month, JournalStorage(path), n_trials=20, population=10,
            load_if_exists=True,
        )
        assert len(resumed.study.trials) == 20
