"""Search drivers: exhaustive and black-box composition search."""

import pytest

from repro.blackbox import NSGA2Sampler, RandomSampler
from repro.core.parameterspace import ParameterSpace
from repro.core.study_runner import (
    OptimizationRunner,
    run_blackbox_search,
    run_exhaustive_search,
)
from repro.exceptions import OptimizationError

SMALL_SPACE = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=3)


class TestExhaustive:
    def test_covers_space(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        result = runner.run_exhaustive()
        assert len(result.evaluated) == len(SMALL_SPACE)
        assert result.n_simulations == len(SMALL_SPACE)

    def test_front_nonempty_and_anchored(self, houston_month):
        result = run_exhaustive_search(houston_month, space=SMALL_SPACE)
        front = result.front()
        assert front
        # The grid-only baseline is always on the front (0 embodied).
        assert front[0].composition.is_grid_only


class TestBlackbox:
    def test_runs_and_caches(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        result = runner.run_blackbox(
            n_trials=60, sampler=NSGA2Sampler(population_size=10, seed=3)
        )
        assert result.study is not None
        assert len(result.study.trials) == 60
        # GA revisits elites → strictly fewer simulations than trials.
        assert result.n_simulations <= 60
        assert len(result.evaluated) == result.n_simulations

    def test_recovery_rate_bounds(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        exhaustive = runner.run_exhaustive()
        found = runner.run_blackbox(
            n_trials=80, sampler=NSGA2Sampler(population_size=10, seed=7)
        )
        rate = runner.recovery_rate(found, exhaustive)
        assert 0.0 <= rate <= 1.0
        assert rate > 0.3  # sanity: the GA finds a meaningful share

    def test_shared_cache_across_modes(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        runner.run_exhaustive()
        before = runner.n_simulations
        runner.run_blackbox(n_trials=30, sampler=RandomSampler(seed=1))
        # Every composition was already simulated by the exhaustive pass.
        assert runner.n_simulations == before

    def test_convenience_wrapper(self, houston_month):
        result = run_blackbox_search(
            houston_month, n_trials=30, population_size=8, seed=2, space=SMALL_SPACE
        )
        assert result.study is not None

    def test_validation(self, houston_month):
        runner = OptimizationRunner(houston_month, space=SMALL_SPACE)
        with pytest.raises(OptimizationError):
            runner.run_blackbox(n_trials=0)
