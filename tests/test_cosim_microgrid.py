"""Microgrid power-flow resolution, policies, grid accounting, engine."""

import numpy as np
import pytest

from repro.cosim import (
    Actor,
    CLCBattery,
    CoSimEnvironment,
    ConstantSignal,
    GridConnection,
    IdealBattery,
    Microgrid,
    MicrogridSimulator,
    Monitor,
    PeriodicSimulator,
    TraceSignal,
)
from repro.cosim.policy import DefaultPolicy, IslandedPolicy, TimeWindowPolicy
from repro.exceptions import ConfigurationError, ScheduleError
from repro.timeseries import TimeSeries

HOUR = 3600.0


def simple_grid(production_w, consumption_w, storage=None, policy=None):
    return Microgrid(
        actors=[
            Actor("gen", ConstantSignal(production_w)),
            Actor("load", ConstantSignal(consumption_w), is_consumer=True),
        ],
        storage=storage,
        policy=policy,
    )


class TestMicrogridStep:
    def test_surplus_exported_without_storage(self):
        mg = simple_grid(150.0, 100.0)
        r = mg.step(0.0, HOUR)
        assert r.grid_export_w == pytest.approx(50.0)
        assert r.grid_import_w == 0.0

    def test_deficit_imported_without_storage(self):
        mg = simple_grid(40.0, 100.0)
        r = mg.step(0.0, HOUR)
        assert r.grid_import_w == pytest.approx(60.0)
        assert r.grid_export_w == 0.0

    def test_surplus_charges_battery_first(self):
        battery = IdealBattery(capacity_wh=1_000.0, initial_soc=0.0)
        mg = simple_grid(150.0, 100.0, storage=battery)
        r = mg.step(0.0, HOUR)
        assert r.storage_charge_w == pytest.approx(50.0)
        assert r.grid_export_w == pytest.approx(0.0)

    def test_deficit_discharges_battery_first(self):
        battery = IdealBattery(capacity_wh=1_000.0, initial_soc=1.0)
        mg = simple_grid(40.0, 100.0, storage=battery)
        r = mg.step(0.0, HOUR)
        assert r.storage_discharge_w == pytest.approx(60.0)
        assert r.grid_import_w == pytest.approx(0.0)

    def test_battery_overflow_exports_rest(self):
        battery = IdealBattery(capacity_wh=10.0, initial_soc=0.0)
        mg = simple_grid(150.0, 100.0, storage=battery)
        r = mg.step(0.0, HOUR)
        assert r.storage_charge_w == pytest.approx(10.0)
        assert r.grid_export_w == pytest.approx(40.0)

    def test_power_balance_invariant(self):
        battery = CLCBattery(capacity_wh=5_000.0, initial_soc=0.5)
        mg = simple_grid(120.0, 100.0, storage=battery)
        for i in range(48):
            r = mg.step(i * HOUR, HOUR)
            supply = r.production_w + r.grid_import_w + r.storage_discharge_w
            use = r.consumption_w + r.grid_export_w + r.storage_charge_w
            assert supply == pytest.approx(use, abs=1e-6)

    def test_actor_lookup(self):
        mg = simple_grid(1.0, 1.0)
        assert mg.actor("gen").name == "gen"
        with pytest.raises(ConfigurationError):
            mg.actor("ghost")

    def test_duplicate_actor_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Microgrid(
                actors=[Actor("a", ConstantSignal(1.0)), Actor("a", ConstantSignal(2.0))]
            )

    def test_empty_actor_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Microgrid(actors=[])


class TestPolicies:
    def test_islanded_never_imports(self):
        mg = simple_grid(40.0, 100.0, policy=IslandedPolicy())
        r = mg.step(0.0, HOUR)
        assert r.grid_import_w == 0.0
        assert r.unserved_w == pytest.approx(60.0)

    def test_islanded_with_battery_serves(self):
        battery = IdealBattery(capacity_wh=1_000.0, initial_soc=1.0)
        mg = simple_grid(40.0, 100.0, storage=battery, policy=IslandedPolicy())
        r = mg.step(0.0, HOUR)
        assert r.unserved_w == pytest.approx(0.0)
        assert r.storage_discharge_w == pytest.approx(60.0)

    def test_time_window_policy_blocks_outside_window(self):
        battery = IdealBattery(capacity_wh=10_000.0, initial_soc=1.0)
        policy = TimeWindowPolicy(discharge_start_h=16.0, discharge_end_h=22.0)
        mg = simple_grid(0.0, 100.0, storage=battery, policy=policy)
        # 10:00 — outside window: import everything.
        r = mg.step(10 * HOUR, HOUR)
        assert r.grid_import_w == pytest.approx(100.0)
        # 18:00 — inside window: discharge.
        r = mg.step(18 * HOUR, HOUR)
        assert r.storage_discharge_w == pytest.approx(100.0)

    def test_time_window_wraps_midnight(self):
        policy = TimeWindowPolicy(discharge_start_h=22.0, discharge_end_h=4.0)
        assert policy._in_window(23 * HOUR)
        assert policy._in_window(2 * HOUR)
        assert not policy._in_window(12 * HOUR)

    def test_time_window_validation(self):
        with pytest.raises(ConfigurationError):
            TimeWindowPolicy(discharge_start_h=25.0)


class TestGridConnection:
    def test_emission_accounting(self):
        mg = simple_grid(0.0, 1_000.0)  # imports 1 kW
        grid = GridConnection(ConstantSignal(400.0))  # gCO2/kWh
        for i in range(24):
            grid.record(mg.step(i * HOUR, HOUR))
        # 24 kWh at 400 g → 9.6 kg
        assert grid.emissions_kg == pytest.approx(9.6)
        assert grid.import_energy_wh == pytest.approx(24_000.0)

    def test_export_not_credited_for_carbon(self):
        mg = simple_grid(2_000.0, 1_000.0)
        grid = GridConnection(ConstantSignal(400.0))
        grid.record(mg.step(0.0, HOUR))
        assert grid.emissions_kg == 0.0
        assert grid.export_energy_wh == pytest.approx(1_000.0)

    def test_cost_with_export_credit(self):
        mg_imp = simple_grid(0.0, 1_000.0)
        grid = GridConnection(
            ConstantSignal(0.0),
            price=ConstantSignal(0.2),
            export_credit=ConstantSignal(0.05),
        )
        grid.record(mg_imp.step(0.0, HOUR))  # 1 kWh × $0.2
        mg_exp = simple_grid(2_000.0, 1_000.0)
        grid.record(mg_exp.step(1 * HOUR, HOUR))  # 1 kWh × $0.05 credit
        assert grid.cost_usd == pytest.approx(0.2 - 0.05)

    def test_reset(self):
        grid = GridConnection(ConstantSignal(100.0))
        grid.record(simple_grid(0.0, 100.0).step(0.0, HOUR))
        grid.reset()
        assert grid.emissions_kg == 0.0 and grid.steps == 0


class TestMonitor:
    def test_records_all_fields(self):
        mg = simple_grid(100.0, 60.0)
        mon = Monitor()
        for i in range(5):
            mon.record(mg.step(i * HOUR, HOUR))
        assert len(mon) == 5
        assert np.allclose(mon.series("production_w"), 100.0)
        assert np.allclose(mon.series("grid_export_w"), 40.0)

    def test_unknown_series_raises(self):
        with pytest.raises(KeyError):
            Monitor().series("frequency_hz")

    def test_reset(self):
        mon = Monitor()
        mon.record(simple_grid(1.0, 1.0).step(0.0, HOUR))
        mon.reset()
        assert len(mon) == 0


class TestEngine:
    def test_periodic_stepping(self):
        calls = []
        env = CoSimEnvironment()
        env.add_simulator(PeriodicSimulator(lambda t, dt: calls.append(t), dt_s=HOUR))
        executed = env.run_until(5 * HOUR)
        assert executed == 5
        assert calls == [0.0, HOUR, 2 * HOUR, 3 * HOUR, 4 * HOUR]

    def test_priority_ordering_same_time(self):
        order = []
        env = CoSimEnvironment()
        late = PeriodicSimulator(lambda t, dt: order.append("late"), dt_s=HOUR, priority=90)
        early = PeriodicSimulator(lambda t, dt: order.append("early"), dt_s=HOUR, priority=10)
        env.add_simulator(late)
        env.add_simulator(early)
        env.run_until(HOUR)
        assert order == ["early", "late"]

    def test_heterogeneous_steps(self):
        """A minutely and an hourly simulator coexist causally."""
        minutes, hours = [], []
        env = CoSimEnvironment()
        env.add_simulator(PeriodicSimulator(lambda t, dt: minutes.append(t), dt_s=60.0))
        env.add_simulator(PeriodicSimulator(lambda t, dt: hours.append(t), dt_s=HOUR))
        env.run_until(2 * HOUR)
        assert len(minutes) == 120
        assert len(hours) == 2

    def test_cannot_schedule_in_past(self):
        env = CoSimEnvironment()
        env.add_simulator(PeriodicSimulator(lambda t, dt: None, dt_s=HOUR))
        env.run_until(2 * HOUR)
        with pytest.raises(ScheduleError):
            env.add_simulator(PeriodicSimulator(lambda t, dt: None, dt_s=HOUR), start_s=0.0)

    def test_non_advancing_simulator_detected(self):
        class Stuck:
            priority = 50

            def step(self, t_s):
                return t_s  # never advances

        env = CoSimEnvironment()
        env.add_simulator(Stuck())
        with pytest.raises(ScheduleError):
            env.run_until(HOUR)

    def test_microgrid_simulator_end_to_end(self):
        load = TimeSeries(np.full(24, 1_000.0), step_s=HOUR)
        mg = Microgrid(
            actors=[Actor("dc", TraceSignal(load), is_consumer=True)],
        )
        grid = GridConnection(ConstantSignal(250.0))
        mon = Monitor()
        env = CoSimEnvironment()
        env.add_simulator(MicrogridSimulator(mg, dt_s=HOUR, grid=grid, monitor=mon))
        env.run_until(24 * HOUR)
        assert len(mon) == 24
        assert grid.import_energy_wh == pytest.approx(24_000.0)
        assert grid.emissions_kg == pytest.approx(6.0)
