"""Parallel execution and resumable search (DESIGN.md §3–§4).

The multiprocessing cases use 2 spawn workers: on any machine this
exercises the real pool path (pickling, ordering), and the determinism
assertions must hold regardless of core count.
"""

import pytest

from repro.blackbox import (
    JournalStorage,
    NSGA2Sampler,
    ParallelStudyRunner,
    RandomSampler,
    TrialState,
    create_study,
)
from repro.blackbox.distributions import FloatDistribution, IntDistribution
from repro.confsys import MultiprocessingLauncher, SerialLauncher
from repro.core.parameterspace import ParameterSpace
from repro.core.study_runner import CompositionObjective, OptimizationRunner
from repro.exceptions import OptimizationError

SMALL_SPACE = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=3)

SPHERE_SPACE = {
    "x": FloatDistribution(-2.0, 2.0),
    "k": IntDistribution(0, 5),
}


def sphere(params):  # module-level: picklable for spawn workers
    return params["x"] ** 2 + params["k"]


def boom(params):  # module-level: picklable for spawn workers
    raise ValueError("boom")


class UnreconstructableError(Exception):
    """Pickles fine but explodes on unpickling (multi-arg __init__)."""

    def __init__(self, code, msg):
        super().__init__(f"{code}: {msg}")


def boom_unpicklable(params):  # module-level: picklable for spawn workers
    raise UnreconstructableError(42, "cannot round-trip")


def _run_parallel(launcher, sampler, n_trials=12, batch_size=4):
    study = create_study(direction="minimize", sampler=sampler, study_name="p")
    ParallelStudyRunner(study, SPHERE_SPACE, launcher=launcher, batch_size=batch_size).optimize(
        sphere, n_trials=n_trials
    )
    return study


class TestParallelStudyRunner:
    def test_serial_launcher_runs(self):
        study = _run_parallel(SerialLauncher(), RandomSampler(seed=1))
        assert len(study.trials) == 12
        assert all(t.state == TrialState.COMPLETE for t in study.trials)
        assert all(t.values[0] == sphere(t.params) for t in study.trials)

    def test_multiprocessing_matches_serial(self):
        serial = _run_parallel(SerialLauncher(), NSGA2Sampler(population_size=4, seed=2))
        parallel = _run_parallel(
            MultiprocessingLauncher(n_workers=2), NSGA2Sampler(population_size=4, seed=2)
        )
        assert [t.params for t in serial.trials] == [t.params for t in parallel.trials]
        assert [t.values for t in serial.trials] == [t.values for t in parallel.trials]

    def test_rerun_is_reproducible(self):
        a = _run_parallel(SerialLauncher(), RandomSampler(seed=3))
        b = _run_parallel(SerialLauncher(), RandomSampler(seed=3))
        assert [t.params for t in a.trials] == [t.params for t in b.trials]

    def test_caught_errors_mark_failed(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=4), study_name="f")
        runner = ParallelStudyRunner(study, SPHERE_SPACE, batch_size=3)
        runner.optimize(boom, n_trials=3, catch=(ValueError,))
        assert [t.state for t in study.trials] == [TrialState.FAILED] * 3

    def test_uncaught_errors_propagate(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=5), study_name="f")
        runner = ParallelStudyRunner(study, SPHERE_SPACE, batch_size=2)
        with pytest.raises(ValueError, match="boom"):
            runner.optimize(boom, n_trials=2)
        assert study.trials[0].state == TrialState.FAILED

    def test_validation(self):
        study = create_study(direction="minimize", study_name="v")
        with pytest.raises(OptimizationError):
            ParallelStudyRunner(study, {})
        with pytest.raises(OptimizationError):
            ParallelStudyRunner(study, SPHERE_SPACE, batch_size=0)
        with pytest.raises(OptimizationError):
            ParallelStudyRunner(study, SPHERE_SPACE).optimize(sphere, n_trials=0)

    def test_unpicklable_exception_does_not_hang_the_pool(self):
        # An exception that cannot be reconstructed parent-side used to
        # kill the pool's result-handler thread and block forever; it
        # must now surface as an OptimizationError naming the original.
        study = create_study(direction="minimize", sampler=RandomSampler(seed=13), study_name="u")
        runner = ParallelStudyRunner(
            study, SPHERE_SPACE, launcher=MultiprocessingLauncher(n_workers=2), batch_size=2
        )
        with pytest.raises(OptimizationError, match="UnreconstructableError"):
            runner.optimize(boom_unpicklable, n_trials=2)
        assert study.trials[0].state == TrialState.FAILED

    def test_n_trials_is_a_total_target_on_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        study = create_study(
            direction="minimize", sampler=RandomSampler(seed=14), study_name="t",
            storage=JournalStorage(path),
        )
        ParallelStudyRunner(study, SPHERE_SPACE, batch_size=4).optimize(sphere, n_trials=10)

        resumed = create_study(
            direction="minimize", sampler=RandomSampler(seed=14), study_name="t",
            storage=JournalStorage(path), load_if_exists=True,
        )
        ParallelStudyRunner(resumed, SPHERE_SPACE, batch_size=4).optimize(sphere, n_trials=12)
        # 12 total — not 10 loaded + 12 more; the trailing partial batch
        # (trials 8–9) was re-run under the same numbers.
        assert len(resumed.trials) == 12

        reference = create_study(direction="minimize", sampler=RandomSampler(seed=14), study_name="t")
        ParallelStudyRunner(reference, SPHERE_SPACE, batch_size=4).optimize(sphere, n_trials=12)
        assert [t.params for t in resumed.trials] == [t.params for t in reference.trials]
        assert [t.values for t in resumed.trials] == [t.values for t in reference.trials]

    def test_batch_defaults_to_population(self):
        study = create_study(sampler=NSGA2Sampler(population_size=6, seed=6), study_name="b")
        runner = ParallelStudyRunner(study, SPHERE_SPACE)
        assert runner.batch_size == 6

    def test_journaled_parallel_run_is_resumable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        study = create_study(
            direction="minimize",
            sampler=RandomSampler(seed=7),
            study_name="p",
            storage=JournalStorage(path),
        )
        ParallelStudyRunner(study, SPHERE_SPACE, batch_size=4).optimize(sphere, n_trials=8)

        resumed = create_study(
            direction="minimize",
            sampler=RandomSampler(seed=7),
            study_name="p",
            storage=JournalStorage(path),
            load_if_exists=True,
        )
        assert [t.params for t in resumed.trials] == [t.params for t in study.trials]


class TestParallelEvaluation:
    def test_chunked_evaluation_matches_serial(self, houston_month):
        comps = SMALL_SPACE.all_compositions()
        serial = OptimizationRunner(houston_month, space=SMALL_SPACE).evaluate(comps)
        parallel = OptimizationRunner(
            houston_month, space=SMALL_SPACE, launcher=MultiprocessingLauncher(n_workers=2)
        ).evaluate(comps)
        assert [e.composition for e in serial] == [e.composition for e in parallel]
        assert [e.embodied_kg for e in serial] == [e.embodied_kg for e in parallel]
        assert [
            e.metrics.operational_emissions_kg for e in serial
        ] == [e.metrics.operational_emissions_kg for e in parallel]

    def test_composition_objective_matches_runner(self, houston_month):
        objective = CompositionObjective(houston_month, space=SMALL_SPACE)
        params = {"n_turbines": 2, "solar_increments": 3, "battery_units": 1}
        comp = SMALL_SPACE.from_params(params)
        expected = OptimizationRunner(houston_month, space=SMALL_SPACE).evaluate([comp])[0]
        assert objective(params) == expected.objectives(("operational", "embodied"))

    def test_composition_objective_cosim_close_to_fast(self, houston_month):
        params = {"n_turbines": 1, "solar_increments": 1, "battery_units": 1}
        fast = CompositionObjective(houston_month, space=SMALL_SPACE)(params)
        slow = CompositionObjective(houston_month, space=SMALL_SPACE, cosim=True)(params)
        assert fast == pytest.approx(slow, rel=1e-6)


def _front_key(result):
    return sorted(
        (e.composition.n_turbines, e.composition.solar_kw, e.composition.battery_units)
        for e in result.front()
    )


class TestResumableBlackboxSearch:
    """Scaled-down version of the acceptance protocol: a fixed-seed
    NSGA-II study killed mid-run and resumed must reach the identical
    final Pareto front as an uninterrupted run (the full 350-trial
    protocol runs in ``benchmarks/bench_parallel_study.py``)."""

    N_TRIALS = 60
    POP = 10
    SEED = 42

    def _sampler(self):
        return NSGA2Sampler(population_size=self.POP, seed=self.SEED)

    def _run(self, scenario, storage, n_trials, load_if_exists=False):
        return OptimizationRunner(scenario, space=SMALL_SPACE).run_blackbox(
            n_trials=n_trials,
            sampler=self._sampler(),
            storage=storage,
            study_name="resume-test",
            load_if_exists=load_if_exists,
        )

    @pytest.mark.parametrize("kill_after", [15, 30, 35])  # mid/at-generation
    def test_resumed_front_identical(self, houston_month, tmp_path, kill_after):
        full = self._run(
            houston_month, JournalStorage(tmp_path / "full.jsonl"), self.N_TRIALS
        )

        path = tmp_path / "interrupted.jsonl"
        self._run(houston_month, JournalStorage(path), kill_after)
        resumed = self._run(
            houston_month, JournalStorage(path), self.N_TRIALS, load_if_exists=True
        )

        assert [t.params for t in resumed.study.trials] == [
            t.params for t in full.study.trials
        ]
        assert [t.values for t in resumed.study.trials] == [
            t.values for t in full.study.trials
        ]
        assert _front_key(resumed) == _front_key(full)

    def test_resume_after_torn_journal_tail(self, houston_month, tmp_path):
        full = self._run(houston_month, JournalStorage(tmp_path / "full.jsonl"), self.N_TRIALS)
        path = tmp_path / "interrupted.jsonl"
        self._run(houston_month, JournalStorage(path), 25)
        with open(path, "a") as f:
            f.write('{"op": "finish", "study": "resume-test"')  # kill -9 mid-append
        resumed = self._run(houston_month, JournalStorage(path), self.N_TRIALS, load_if_exists=True)
        assert _front_key(resumed) == _front_key(full)

    def test_completed_study_resume_is_a_noop_rerun(self, houston_month, tmp_path):
        path = tmp_path / "journal.jsonl"
        full = self._run(houston_month, JournalStorage(path), self.N_TRIALS)
        again = self._run(houston_month, JournalStorage(path), self.N_TRIALS, load_if_exists=True)
        assert len(again.study.trials) == self.N_TRIALS
        assert _front_key(again) == _front_key(full)

    def test_storage_does_not_change_trial_count_or_validity(self, houston_month, tmp_path):
        result = self._run(houston_month, JournalStorage(tmp_path / "journal.jsonl"), 20)
        assert len(result.study.trials) == 20
        assert all(t.state == TrialState.COMPLETE for t in result.study.trials)
        # Every journaled composition lies on the search grid.
        for t in result.study.trials:
            assert SMALL_SPACE.contains(SMALL_SPACE.from_params(t.params))


class TestShardedParallelRunner:
    """ParallelStudyRunner fanning records across per-worker shard stores
    (DESIGN.md §7): same trials as single-store, resumable, mergeable."""

    def test_storage_spec_attach_and_shard_fanout(self, tmp_path):
        spec = str(tmp_path / "p.jsonl")
        study = create_study(
            direction="minimize", sampler=RandomSampler(seed=21), study_name="sh"
        )
        ParallelStudyRunner(
            study, SPHERE_SPACE, batch_size=4, storage=spec, shards=2
        ).optimize(sphere, n_trials=8)
        assert (tmp_path / "p.jsonl.shard0").exists()
        assert (tmp_path / "p.jsonl.shard1").exists()
        assert not (tmp_path / "p.jsonl").exists()

        single = create_study(
            direction="minimize", sampler=RandomSampler(seed=21), study_name="sh",
            storage=JournalStorage(tmp_path / "single.jsonl"),
        )
        ParallelStudyRunner(single, SPHERE_SPACE, batch_size=4).optimize(
            sphere, n_trials=8
        )
        assert [t.params for t in study.trials] == [t.params for t in single.trials]
        assert [t.values for t in study.trials] == [t.values for t in single.trials]

    def test_sharded_study_resumes_to_total_target(self, tmp_path):
        from repro.blackbox.storage import resolve_storage

        spec = str(tmp_path / "p.jsonl")
        study = create_study(
            direction="minimize", sampler=RandomSampler(seed=22), study_name="sh"
        )
        ParallelStudyRunner(
            study, SPHERE_SPACE, batch_size=4, storage=spec, shards=2
        ).optimize(sphere, n_trials=8)

        resumed = create_study(
            direction="minimize", sampler=RandomSampler(seed=22), study_name="sh",
            storage=resolve_storage(spec, shards=2), load_if_exists=True,
        )
        ParallelStudyRunner(resumed, SPHERE_SPACE, batch_size=4).optimize(
            sphere, n_trials=12
        )
        assert len(resumed.trials) == 12

        reference = create_study(
            direction="minimize", sampler=RandomSampler(seed=22), study_name="sh"
        )
        ParallelStudyRunner(reference, SPHERE_SPACE, batch_size=4).optimize(
            sphere, n_trials=12
        )
        assert [t.params for t in resumed.trials] == [
            t.params for t in reference.trials
        ]

    def test_mismatched_batch_on_resume_raises(self, tmp_path):
        from repro.blackbox.storage import resolve_storage

        spec = str(tmp_path / "p.jsonl")
        study = create_study(
            direction="minimize", sampler=RandomSampler(seed=23), study_name="sh"
        )
        ParallelStudyRunner(
            study, SPHERE_SPACE, batch_size=4, storage=spec
        ).optimize(sphere, n_trials=8)
        resumed = create_study(
            direction="minimize", sampler=RandomSampler(seed=23), study_name="sh",
            storage=resolve_storage(spec), load_if_exists=True,
        )
        with pytest.raises(OptimizationError, match="batch"):
            ParallelStudyRunner(resumed, SPHERE_SPACE, batch_size=3).optimize(
                sphere, n_trials=12
            )

    def test_attach_refuses_already_persistent_study(self, tmp_path):
        study = create_study(
            direction="minimize", study_name="sh",
            storage=JournalStorage(tmp_path / "a.jsonl"),
        )
        with pytest.raises(OptimizationError, match="already has a storage"):
            ParallelStudyRunner(
                study, SPHERE_SPACE, storage=str(tmp_path / "b.jsonl")
            )


class TestBatchMetadataOnCreatePath:
    def test_create_study_path_persists_batch_and_arms_the_guard(self, tmp_path):
        # The documented flow — create_study(storage=...) first, runner
        # second — must persist the generation size too, so a resume
        # with a different batch is caught, not silently misaligned.
        path = tmp_path / "p.jsonl"
        study = create_study(
            direction="minimize", sampler=RandomSampler(seed=31), study_name="b",
            storage=JournalStorage(path),
        )
        ParallelStudyRunner(study, SPHERE_SPACE, batch_size=4).optimize(
            sphere, n_trials=8
        )
        assert JournalStorage(path).load_study("b").metadata["batch"] == 4

        resumed = create_study(
            direction="minimize", sampler=RandomSampler(seed=31), study_name="b",
            storage=JournalStorage(path), load_if_exists=True,
        )
        with pytest.raises(OptimizationError, match="batch"):
            ParallelStudyRunner(resumed, SPHERE_SPACE, batch_size=3).optimize(
                sphere, n_trials=12
            )
