"""Study/Trial machinery and samplers (repro.blackbox)."""

import numpy as np
import pytest

from repro.blackbox import (
    GridSampler,
    MedianPruner,
    NSGA2Sampler,
    RandomSampler,
    SuccessiveHalvingPruner,
    TPESampler,
    TrialState,
    create_study,
)
from repro.exceptions import OptimizationError, TrialPruned


def sphere(trial):
    x = trial.suggest_float("x", -4.0, 4.0)
    y = trial.suggest_float("y", -4.0, 4.0)
    return (x - 1.0) ** 2 + (y + 0.5) ** 2


class TestStudyBasics:
    def test_optimize_single_objective(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=0))
        study.optimize(sphere, n_trials=100)
        assert study.best_value < 2.0
        assert set(study.best_params) == {"x", "y"}

    def test_maximize_direction(self):
        study = create_study(direction="maximize", sampler=RandomSampler(seed=0))
        study.optimize(lambda t: t.suggest_float("x", 0.0, 1.0), n_trials=50)
        assert study.best_value > 0.9

    def test_ask_tell_protocol(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=1))
        trial = study.ask()
        x = trial.suggest_float("x", 0.0, 1.0)
        frozen = study.tell(trial, x * x)
        assert frozen.state == TrialState.COMPLETE
        assert frozen.values == (x * x,)

    def test_tell_twice_rejected(self):
        study = create_study(direction="minimize")
        trial = study.ask()
        study.tell(trial, 1.0)
        with pytest.raises(OptimizationError):
            study.tell(trial, 2.0)

    def test_tell_wrong_arity_rejected(self):
        study = create_study(directions=["minimize", "minimize"])
        trial = study.ask()
        with pytest.raises(OptimizationError):
            study.tell(trial, 1.0)

    def test_non_finite_rejected(self):
        study = create_study(direction="minimize")
        trial = study.ask()
        with pytest.raises(OptimizationError):
            study.tell(trial, float("nan"))

    def test_best_trial_on_multiobjective_rejected(self):
        study = create_study(directions=["minimize", "minimize"])
        with pytest.raises(OptimizationError):
            _ = study.best_trial

    def test_pruned_trials_excluded(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=2))

        def objective(trial):
            x = trial.suggest_float("x", 0.0, 1.0)
            if x > 0.5:
                raise TrialPruned()
            return x

        study.optimize(objective, n_trials=50)
        assert all(t.params["x"] <= 0.5 for t in study.completed_trials())
        assert any(t.state == TrialState.PRUNED for t in study.trials)

    def test_catch_exceptions(self):
        study = create_study(direction="minimize", sampler=RandomSampler(seed=3))

        def objective(trial):
            x = trial.suggest_float("x", 0.0, 1.0)
            if x > 0.7:
                raise ValueError("boom")
            return x

        study.optimize(objective, n_trials=30, catch=(ValueError,))
        assert any(t.state == TrialState.FAILED for t in study.trials)

    def test_parameter_redefinition_rejected(self):
        study = create_study(direction="minimize")
        trial = study.ask()
        trial.suggest_float("x", 0.0, 1.0)
        with pytest.raises(OptimizationError):
            trial.suggest_float("x", 0.0, 2.0)

    def test_direction_and_directions_conflict(self):
        with pytest.raises(OptimizationError):
            create_study(direction="minimize", directions=["minimize"])

    def test_user_attrs(self):
        study = create_study(direction="minimize")
        trial = study.ask()
        trial.set_user_attr("tag", "hello")
        assert trial.user_attrs["tag"] == "hello"


class TestGridSamplerStudy:
    def test_covers_grid_exactly_once(self):
        grid = {"a": [0, 1, 2], "b": [0, 1]}
        study = create_study(direction="minimize", sampler=GridSampler(grid))
        seen = []

        def objective(trial):
            a = trial.suggest_int("a", 0, 2)
            b = trial.suggest_int("b", 0, 1)
            seen.append((a, b))
            return a + b

        study.optimize(objective, n_trials=6)
        assert sorted(set(seen)) == sorted((a, b) for a in range(3) for b in range(2))

    def test_unknown_param_rejected(self):
        study = create_study(direction="minimize", sampler=GridSampler({"a": [1]}))

        def objective(trial):
            return trial.suggest_int("zzz", 0, 5)

        with pytest.raises(OptimizationError):
            study.optimize(objective, n_trials=1)


class TestNSGA2:
    def test_beats_random_on_biobjective(self):
        """NSGA-II must dominate random search in hypervolume at equal budget."""
        from repro.blackbox.multiobjective import hypervolume_2d

        def objective(trial):
            x = trial.suggest_float("x", 0.0, 1.0)
            y = trial.suggest_float("y", 0.0, 1.0)
            # ZDT1-like: f1=x, f2 = g*(1-sqrt(x/g)) with g = 1+9y
            g = 1.0 + 9.0 * y
            return x, g * (1.0 - np.sqrt(x / g))

        ref = np.array([1.1, 10.1])
        hvs = {}
        for name, sampler in (
            ("nsga2", NSGA2Sampler(population_size=20, seed=11)),
            ("random", RandomSampler(seed=11)),
        ):
            study = create_study(directions=["minimize", "minimize"], sampler=sampler)
            study.optimize(objective, n_trials=300)
            front = np.array([t.values for t in study.best_trials])
            hvs[name] = hypervolume_2d(front, ref)
        assert hvs["nsga2"] > hvs["random"]

    def test_genome_respects_discrete_domains(self):
        sampler = NSGA2Sampler(population_size=8, seed=5)
        study = create_study(directions=["minimize", "minimize"], sampler=sampler)

        def objective(trial):
            a = trial.suggest_int("a", 0, 10, step=2)
            c = trial.suggest_categorical("c", ["p", "q"])
            return a, (1 if c == "p" else 2)

        study.optimize(objective, n_trials=60)
        for t in study.completed_trials():
            assert t.params["a"] % 2 == 0
            assert t.params["c"] in ("p", "q")

    def test_validation(self):
        with pytest.raises(OptimizationError):
            NSGA2Sampler(population_size=1)
        with pytest.raises(OptimizationError):
            NSGA2Sampler(crossover_prob=1.5)


class TestTPE:
    def test_converges_on_quadratic(self):
        study = create_study(direction="minimize", sampler=TPESampler(seed=4))
        study.optimize(lambda t: (t.suggest_float("x", -5.0, 5.0) - 2.0) ** 2, n_trials=80)
        assert abs(study.best_params["x"] - 2.0) < 0.5

    def test_categorical_support(self):
        study = create_study(direction="minimize", sampler=TPESampler(seed=5))

        def objective(trial):
            c = trial.suggest_categorical("c", ["bad", "good"])
            return 0.0 if c == "good" else 1.0

        study.optimize(objective, n_trials=40)
        assert study.best_value == 0.0

    def test_validation(self):
        with pytest.raises(OptimizationError):
            TPESampler(gamma=1.5)
        with pytest.raises(OptimizationError):
            TPESampler(n_startup_trials=0)


class TestMedianPruner:
    def test_prunes_bad_intermediates(self):
        pruner = MedianPruner(n_startup_trials=3)
        study = create_study(direction="minimize", pruner=pruner,
                             sampler=RandomSampler(seed=6))

        executed_full = []

        def objective(trial):
            x = trial.suggest_float("x", 0.0, 1.0)
            for step in range(5):
                trial.report(x * (step + 1), step)
                if trial.should_prune():
                    raise TrialPruned()
            executed_full.append(x)
            return x

        study.optimize(objective, n_trials=40)
        pruned = [t for t in study.trials if t.state == TrialState.PRUNED]
        assert pruned  # some got cut
        # Survivors should be the better half on average.
        assert np.mean(executed_full) < 0.6

    def test_respects_maximize_direction(self):
        """Regression: 'worse' must follow the first objective's direction —
        in a maximize-first study the *below*-median reporter is pruned."""
        pruner = MedianPruner(n_startup_trials=2, n_warmup_steps=0)
        study = create_study(direction="maximize", pruner=pruner)
        for value in (10.0, 20.0):
            trial = study.ask()
            trial.suggest_float("x", 0.0, 100.0)
            trial.report(value, step=0)
            study.tell(trial, value)

        below = study.ask()
        below.report(5.0, step=0)
        assert below.should_prune()

        above = study.ask()
        above.report(30.0, step=0)
        assert not above.should_prune()

    def test_never_prunes_before_warmup(self):
        pruner = MedianPruner(n_startup_trials=0, n_warmup_steps=3)
        study = create_study(direction="minimize", pruner=pruner)
        for value in (1.0, 2.0):
            trial = study.ask()
            trial.suggest_float("x", 0.0, 100.0)
            trial.report(value, step=2)
            trial.report(value, step=3)
            study.tell(trial, value)
        trial = study.ask()
        trial.report(1e9, step=2)  # terrible, but still inside warmup
        assert not trial.should_prune()
        trial.report(1e9, step=3)  # first step at/after warmup prunes
        assert trial.should_prune()

    def test_pruned_peers_inform_the_median(self):
        pruner = MedianPruner(n_startup_trials=1, n_warmup_steps=0)
        study = create_study(direction="minimize", pruner=pruner)
        trial = study.ask()
        trial.suggest_float("x", 0.0, 100.0)
        trial.report(1.0, step=0)
        study.tell(trial, 1.0)
        # a pruned peer's report joins the pool
        pruned = study.ask()
        pruned.report(100.0, step=0)
        study.tell(pruned, state=TrialState.PRUNED)
        probe = study.ask()
        probe.report(50.0, step=0)  # median(1, 100) = 50.5 → not worse
        assert not probe.should_prune()
        probe.report(60.0, step=0)
        assert probe.should_prune()


class TestSuccessiveHalvingPruner:
    def _study(self, direction="minimize"):
        return create_study(
            direction=direction,
            pruner=SuccessiveHalvingPruner(min_resource=1, reduction_factor=2),
        )

    def _report_finished(self, study, values, step):
        for value in values:
            trial = study.ask()
            trial.suggest_float("x", 0.0, 100.0)
            trial.report(value, step=step)
            study.tell(trial, value)

    def test_keeps_best_fraction_at_a_rung(self):
        study = self._study()
        self._report_finished(study, [1.0, 2.0, 3.0, 4.0], step=2)
        good = study.ask()
        good.report(1.5, step=2)  # within the best half of 5 reporters
        assert not good.should_prune()
        bad = study.ask()
        bad.report(5.0, step=2)
        assert bad.should_prune()

    def test_respects_maximize_direction(self):
        study = self._study(direction="maximize")
        self._report_finished(study, [1.0, 2.0, 3.0, 4.0], step=2)
        good = study.ask()
        good.report(5.0, step=2)
        assert not good.should_prune()
        bad = study.ask()
        bad.report(0.5, step=2)
        assert bad.should_prune()

    def test_never_prunes_before_warmup(self):
        pruner = SuccessiveHalvingPruner(
            min_resource=1, reduction_factor=2, n_warmup_steps=4
        )
        study = create_study(direction="minimize", pruner=pruner)
        self._report_finished(study, [1.0, 2.0, 3.0], step=2)
        trial = study.ask()
        trial.report(1e9, step=2)  # rung boundary, but inside warmup
        assert not trial.should_prune()

    def test_only_prunes_at_rung_boundaries(self):
        study = self._study()
        self._report_finished(study, [1.0, 2.0, 3.0], step=3)
        trial = study.ask()
        trial.report(1e9, step=3)  # 3 is not 1·2^k
        assert not trial.should_prune()

    def test_needs_a_cohort(self):
        study = self._study()
        trial = study.ask()
        trial.report(1e9, step=2)  # alone at the rung: nothing to halve
        assert not trial.should_prune()

    def test_validates_parameters(self):
        with pytest.raises(OptimizationError):
            SuccessiveHalvingPruner(min_resource=0)
        with pytest.raises(OptimizationError):
            SuccessiveHalvingPruner(reduction_factor=1)
        with pytest.raises(OptimizationError):
            SuccessiveHalvingPruner(n_warmup_steps=-1)
