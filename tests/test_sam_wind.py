"""Wind model chain: shear, density, power curve, wake, farm model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data import BERKELEY, HOUSTON, synthesize_wind_resource
from repro.exceptions import ConfigurationError
from repro.sam.wind.density import (
    STANDARD_AIR_DENSITY,
    air_density_kg_m3,
    density_corrected_speed,
)
from repro.sam.wind.powercurve import (
    GENERIC_3MW_TURBINE,
    PowerCurve,
    TurbineSpec,
    make_turbine,
)
from repro.sam.wind.shear import extrapolate_log_law, extrapolate_power_law
from repro.sam.wind.wake import constant_wake_loss, jensen_array_efficiency
from repro.sam.wind.windpower import (
    WindFarmModel,
    WindFarmParameters,
    per_turbine_profile,
)


class TestShear:
    def test_power_law_same_height_identity(self):
        v = np.array([5.0, 8.0])
        out = extrapolate_power_law(v, 100.0, 100.0, 0.14)
        assert np.allclose(out, v)

    def test_power_law_higher_is_windier(self):
        v = np.array([6.0])
        assert extrapolate_power_law(v, 50.0, 120.0, 0.14)[0] > 6.0

    def test_log_law_higher_is_windier(self):
        v = np.array([6.0])
        assert extrapolate_log_law(v, 50.0, 120.0, 0.03)[0] > 6.0

    def test_log_law_rejects_below_roughness(self):
        with pytest.raises(ConfigurationError):
            extrapolate_log_law(np.array([6.0]), 0.01, 100.0, 0.03)

    def test_power_law_validation(self):
        with pytest.raises(ConfigurationError):
            extrapolate_power_law(np.array([6.0]), -1.0, 100.0)
        with pytest.raises(ConfigurationError):
            extrapolate_power_law(np.array([6.0]), 100.0, 100.0, shear_exponent=0.9)


class TestDensity:
    def test_sea_level_standard(self):
        rho = air_density_kg_m3(0.0, 15.0)
        assert rho == pytest.approx(STANDARD_AIR_DENSITY, rel=0.01)

    def test_altitude_thins_air(self):
        assert air_density_kg_m3(2000.0, 15.0) < air_density_kg_m3(0.0, 15.0)

    def test_heat_thins_air(self):
        assert air_density_kg_m3(0.0, 40.0) < air_density_kg_m3(0.0, 0.0)

    def test_correction_neutral_at_standard(self):
        v = np.array([8.0])
        assert density_corrected_speed(v, STANDARD_AIR_DENSITY)[0] == pytest.approx(8.0)

    def test_thin_air_reduces_effective_speed(self):
        v = np.array([8.0])
        assert density_corrected_speed(v, 1.0)[0] < 8.0

    def test_elevation_bounds(self):
        with pytest.raises(ConfigurationError):
            air_density_kg_m3(10_000.0)


class TestPowerCurve:
    def test_generic_3mw_anatomy(self):
        curve = GENERIC_3MW_TURBINE.power_curve
        assert curve.rated_power_w == pytest.approx(3e6)
        assert curve.cut_in_ms == pytest.approx(3.5, abs=0.6)
        assert curve.cut_out_ms == pytest.approx(25.0, abs=0.6)

    def test_zero_below_cut_in(self):
        curve = GENERIC_3MW_TURBINE.power_curve
        assert np.all(curve.power_at(np.array([0.0, 1.0, 2.0, 2.9])) == 0.0)

    def test_rated_plateau(self):
        curve = GENERIC_3MW_TURBINE.power_curve
        v = np.array([12.0, 15.0, 20.0, 24.0])
        assert np.allclose(curve.power_at(v), 3e6)

    def test_zero_above_cut_out(self):
        curve = GENERIC_3MW_TURBINE.power_curve
        assert curve.power_at(np.array([30.0]))[0] == 0.0

    def test_monotone_below_rated(self):
        curve = GENERIC_3MW_TURBINE.power_curve
        v = np.linspace(3.0, 10.5, 50)
        p = curve.power_at(v)
        assert np.all(np.diff(p) >= -1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerCurve(np.array([1.0]), np.array([1.0]))  # too short
        with pytest.raises(ConfigurationError):
            PowerCurve(np.array([2.0, 1.0]), np.array([0.0, 1.0]))  # not increasing
        with pytest.raises(ConfigurationError):
            PowerCurve(np.array([1.0, 2.0]), np.array([0.0, -1.0]))  # negative power

    def test_make_turbine_scales(self):
        t5 = make_turbine(5000.0)
        assert t5.rated_power_kw == pytest.approx(5000.0)
        assert t5.rotor_diameter_m > GENERIC_3MW_TURBINE.rotor_diameter_m

    def test_embodied_footprint_matches_paper(self):
        assert GENERIC_3MW_TURBINE.embodied_kg_co2 == pytest.approx(1_046_000.0)


class TestWake:
    def test_single_turbine_no_loss(self):
        assert jensen_array_efficiency(1) == 1.0
        assert constant_wake_loss(1) == 1.0

    def test_efficiency_decreases_with_count(self):
        effs = [jensen_array_efficiency(n) for n in range(1, 11)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_wider_spacing_less_loss(self):
        assert jensen_array_efficiency(10, spacing_diameters=10.0) > jensen_array_efficiency(
            10, spacing_diameters=5.0
        )

    def test_ten_turbine_loss_realistic(self):
        eff = jensen_array_efficiency(10)
        assert 0.90 < eff < 0.99  # typical array losses are 2–10 %

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            jensen_array_efficiency(5, spacing_diameters=0.0)
        with pytest.raises(ConfigurationError):
            jensen_array_efficiency(5, thrust_coefficient=1.5)
        with pytest.raises(ConfigurationError):
            constant_wake_loss(5, loss_fraction=1.0)


class TestWindFarm:
    @pytest.fixture(scope="class")
    def houston_resource(self):
        return synthesize_wind_resource(HOUSTON)

    def test_farm_output_bounded_by_nameplate(self, houston_resource):
        params = WindFarmParameters(n_turbines=4)
        res = WindFarmModel(params).run(houston_resource)
        assert res.ac_power_w.max() <= 4 * 3e6 + 1e-6

    def test_zero_turbines_zero_output(self, houston_resource):
        res = WindFarmModel(WindFarmParameters(n_turbines=0)).run(houston_resource)
        assert np.all(res.ac_power_w == 0.0)

    def test_capacity_factor_bands(self, houston_resource):
        h = WindFarmModel(WindFarmParameters(n_turbines=4)).run(houston_resource)
        assert 0.32 < h.capacity_factor(12_000.0) < 0.50  # Gulf coast
        b = WindFarmModel(WindFarmParameters(n_turbines=4)).run(
            synthesize_wind_resource(BERKELEY)
        )
        assert 0.08 < b.capacity_factor(12_000.0) < 0.22  # Bay Area

    def test_per_turbine_profile_composition(self, houston_resource):
        """farm(n) == per_turbine × n × wake_eff(n) × 1 (availability in both)."""
        per = per_turbine_profile(houston_resource)
        farm = WindFarmModel(WindFarmParameters(n_turbines=6)).run(houston_resource)
        expected = per * 6 * jensen_array_efficiency(6)
        assert np.allclose(farm.ac_power_w, expected, rtol=1e-9)

    def test_wake_model_none(self, houston_resource):
        waked = WindFarmModel(WindFarmParameters(n_turbines=6)).run(houston_resource)
        free = WindFarmModel(
            WindFarmParameters(n_turbines=6, wake_model="none")
        ).run(houston_resource)
        assert free.annual_energy_kwh > waked.annual_energy_kwh

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindFarmParameters(n_turbines=-1)
        with pytest.raises(ConfigurationError):
            WindFarmParameters(n_turbines=1, availability=0.0)
        with pytest.raises(ConfigurationError):
            WindFarmParameters(n_turbines=1, wake_model="voodoo")


@given(st.floats(min_value=0.0, max_value=40.0))
def test_property_power_curve_bounded(speed):
    p = GENERIC_3MW_TURBINE.power_curve.power_at(np.array([speed]))[0]
    assert 0.0 <= p <= 3e6


@given(st.integers(min_value=1, max_value=50))
def test_property_wake_efficiency_in_unit_interval(n):
    assert 0.0 < jensen_array_efficiency(n) <= 1.0
