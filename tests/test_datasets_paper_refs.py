"""Dataset persistence and the paper-reference scorecard."""

import numpy as np
import pytest

from repro.analysis.paper_refs import (
    PAPER_CROSSOVER_YEARS,
    PAPER_EXHAUSTIVE_COMBINATIONS,
    PAPER_TABLE1_HOUSTON,
    PAPER_TABLE2_BERKELEY,
    evaluate_paper_rows,
    reproduction_scorecard,
)
from repro.core.fastsim import BatchEvaluator
from repro.core.parameterspace import PAPER_SPACE
from repro.data import (
    HOUSTON,
    synthesize_carbon_intensity,
    synthesize_datacenter_trace,
    synthesize_solar_resource,
    synthesize_wind_resource,
)
from repro.data.datasets import (
    load_carbon_profile,
    load_solar_resource,
    load_wind_resource,
    load_workload,
    save_carbon_profile,
    save_solar_resource,
    save_wind_resource,
    save_workload,
)
from repro.exceptions import DataError


class TestDatasets:
    def test_solar_roundtrip(self, tmp_path):
        original = synthesize_solar_resource(HOUSTON, n_hours=24 * 7)
        path = save_solar_resource(original, tmp_path / "solar.npz")
        loaded = load_solar_resource(path)
        assert loaded.location is HOUSTON
        assert np.array_equal(loaded.ghi_w_m2, original.ghi_w_m2)
        assert np.array_equal(loaded.ambient_temperature_c, original.ambient_temperature_c)

    def test_wind_roundtrip(self, tmp_path):
        original = synthesize_wind_resource(HOUSTON, n_hours=24 * 7)
        loaded = load_wind_resource(save_wind_resource(original, tmp_path / "wind.npz"))
        assert np.array_equal(loaded.speed_ms, original.speed_ms)
        assert loaded.reference_height_m == original.reference_height_m

    def test_workload_roundtrip(self, tmp_path):
        original = synthesize_datacenter_trace(n_hours=24 * 7)
        loaded = load_workload(save_workload(original, tmp_path / "load.npz"))
        assert np.array_equal(loaded.power_w, original.power_w)
        assert loaded.name == original.name

    def test_carbon_roundtrip(self, tmp_path):
        original = synthesize_carbon_intensity("ERCOT", n_hours=24 * 7)
        loaded = load_carbon_profile(save_carbon_profile(original, tmp_path / "ci.npz"))
        assert np.array_equal(loaded.intensity_g_per_kwh, original.intensity_g_per_kwh)
        assert loaded.region == "ERCOT"

    def test_kind_mismatch_rejected(self, tmp_path):
        path = save_workload(synthesize_datacenter_trace(n_hours=24), tmp_path / "x.npz")
        with pytest.raises(DataError):
            load_solar_resource(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_workload(tmp_path / "ghost.npz")


class TestPaperReferences:
    def test_reference_tables_embodied_consistency(self):
        """The stored paper rows must be self-consistent with the paper's
        embodied constants (a transcription check)."""
        from repro.core.embodied import embodied_carbon_tonnes

        for row in (*PAPER_TABLE1_HOUSTON, *PAPER_TABLE2_BERKELEY):
            assert embodied_carbon_tonnes(row.composition) == pytest.approx(
                row.embodied_tco2, abs=0.5
            )

    def test_constants(self):
        assert PAPER_EXHAUSTIVE_COMBINATIONS == len(PAPER_SPACE)
        assert set(PAPER_CROSSOVER_YEARS) == {"houston", "berkeley"}

    def test_evaluate_paper_rows(self, houston):
        pairs = evaluate_paper_rows(PAPER_TABLE1_HOUSTON, BatchEvaluator(houston))
        assert len(pairs) == 5
        for row, measured in pairs:
            # Embodied must match exactly; operational within a factor.
            assert measured.embodied_tonnes == pytest.approx(row.embodied_tco2, abs=0.5)
        baseline_row, baseline_measured = pairs[0]
        assert baseline_measured.operational_tco2_per_day == pytest.approx(
            baseline_row.operational_tco2_day, abs=0.2
        )

    def test_scorecard_renders(self, houston):
        text = reproduction_scorecard(
            PAPER_TABLE1_HOUSTON, BatchEvaluator(houston), site_label="houston"
        )
        assert "scorecard (houston)" in text
        assert "operational ordering preserved: True" in text
        # All embodied cells exact.
        assert "!" not in text.split("\n", 2)[2]

    def test_ordering_preserved_berkeley(self, berkeley):
        text = reproduction_scorecard(PAPER_TABLE2_BERKELEY, BatchEvaluator(berkeley))
        assert "operational ordering preserved: True" in text
