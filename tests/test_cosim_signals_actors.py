"""Signals and actors (repro.cosim.signal / actor)."""

import numpy as np
import pytest

from repro.cosim.actor import Actor
from repro.cosim.signal import (
    ConstantSignal,
    FunctionSignal,
    SAMSignal,
    TraceSignal,
)
from repro.data import HOUSTON, synthesize_wind_resource
from repro.exceptions import ConfigurationError, SignalError
from repro.sam.wind.windpower import WindFarmModel, WindFarmParameters
from repro.timeseries import TimeSeries


class TestBasicSignals:
    def test_constant(self):
        sig = ConstantSignal(42.0)
        assert sig.at(0.0) == 42.0
        assert sig.at(1e9) == 42.0

    def test_function(self):
        sig = FunctionSignal(lambda t: t / 3600.0)
        assert sig.at(7200.0) == pytest.approx(2.0)

    def test_trace_left_labelled(self):
        ts = TimeSeries(np.array([1.0, 2.0, 3.0]), step_s=3600.0)
        sig = TraceSignal(ts, wrap=False)
        assert sig.at(0.0) == 1.0
        assert sig.at(3599.0) == 1.0
        assert sig.at(3600.0) == 2.0

    def test_trace_wraps_multi_year(self):
        ts = TimeSeries(np.arange(24.0), step_s=3600.0)
        sig = TraceSignal(ts, wrap=True)
        assert sig.at(25 * 3600.0) == 1.0  # next day, hour 1
        assert sig.at(24 * 3600.0 * 365) == 0.0

    def test_trace_no_wrap_raises_out_of_range(self):
        ts = TimeSeries(np.arange(3.0), step_s=3600.0)
        sig = TraceSignal(ts, wrap=False)
        with pytest.raises(SignalError):
            sig.at(10 * 3600.0)


class TestSAMSignal:
    def test_wraps_model_run(self):
        resource = synthesize_wind_resource(HOUSTON, n_hours=48)
        model = WindFarmModel(WindFarmParameters(n_turbines=2))
        sig = SAMSignal(model, resource, name="windfarm")
        expected = model.hourly_profile_w(resource)
        assert np.allclose(sig.profile_w, expected)
        assert sig.at(5 * 3600.0) == expected[5]

    def test_serves_beyond_resource_year(self):
        resource = synthesize_wind_resource(HOUSTON, n_hours=48)
        sig = SAMSignal(WindFarmModel(WindFarmParameters(n_turbines=1)), resource)
        assert sig.at(49 * 3600.0) == sig.at(1 * 3600.0)


class TestActor:
    def test_producer_sign(self):
        actor = Actor("solar", ConstantSignal(100.0))
        assert actor.power_at(0.0) == 100.0

    def test_consumer_negates(self):
        actor = Actor("dc", ConstantSignal(100.0), is_consumer=True)
        assert actor.power_at(0.0) == -100.0

    def test_consumer_handles_prenegative_trace(self):
        actor = Actor("dc", ConstantSignal(-100.0), is_consumer=True)
        assert actor.power_at(0.0) == -100.0

    def test_scale(self):
        actor = Actor("solar", ConstantSignal(100.0), scale=0.5)
        assert actor.power_at(0.0) == 50.0

    def test_disabled_actor_silent(self):
        actor = Actor("solar", ConstantSignal(100.0))
        actor.enabled = False
        assert actor.power_at(0.0) == 0.0

    def test_offset_applied(self):
        actor = Actor("dc", ConstantSignal(100.0), is_consumer=True)
        actor.power_offset_w = 20.0  # demand response shed
        assert actor.power_at(0.0) == -80.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Actor("", ConstantSignal(1.0))
        with pytest.raises(ConfigurationError):
            Actor("x", ConstantSignal(1.0), scale=-1.0)
