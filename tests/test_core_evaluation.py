"""Scenario construction, batch evaluation, candidates, projection."""

import numpy as np
import pytest

from repro.core.candidates import (
    greedy_diversity_candidates,
    kmeans_candidates,
    paper_candidates,
    threshold_candidates,
)
from repro.core.composition import MicrogridComposition
from repro.core.fastsim import BatchEvaluator, coverage_grid
from repro.core.parameterspace import ParameterSpace
from repro.core.pareto import front_hypervolume, pareto_front
from repro.core.projection import crossover_year, project_emissions, project_many
from repro.core.scenario import build_scenario
from repro.core.study_runner import OptimizationRunner
from repro.exceptions import ConfigurationError, OptimizationError


class TestScenario:
    def test_cached(self):
        a = build_scenario("houston", n_hours=24 * 10)
        b = build_scenario("houston", n_hours=24 * 10)
        assert a is b

    def test_cache_bypass(self):
        a = build_scenario("houston", n_hours=24 * 10)
        b = build_scenario("houston", n_hours=24 * 10, use_cache=False)
        assert a is not b
        assert np.array_equal(a.solar_per_kw_w, b.solar_per_kw_w)

    def test_profiles_aligned(self, houston_month):
        sc = houston_month
        n = sc.n_steps
        assert sc.solar_per_kw_w.shape == (n,)
        assert sc.wind_per_turbine_w.shape == (n,)
        assert sc.carbon.intensity_g_per_kwh.shape == (n,)

    def test_farm_profile_scaling(self, houston_month):
        sc = houston_month
        single = sc.wind_farm_profile_w(1)
        assert np.allclose(single, sc.wind_per_turbine_w)  # eff(1) == 1
        six = sc.wind_farm_profile_w(6)
        assert np.all(six <= 6 * single + 1e-9)

    def test_zero_farm_profiles(self, houston_month):
        assert np.all(houston_month.wind_farm_profile_w(0) == 0.0)
        assert np.all(houston_month.solar_farm_profile_w(0.0) == 0.0)


class TestBatchEvaluator:
    def test_grid_only_baseline_matches_mean_ci(self, houston):
        """Baseline operational = mean load × mean CI (no microgrid)."""
        be = BatchEvaluator(houston)
        e = be.evaluate_one(MicrogridComposition(0, 0.0, 0))
        expected_kg_day = 1.62e3 * 24.0 * houston.carbon.mean() / 1_000.0
        assert e.metrics.operational_tco2_per_day * 1_000.0 == pytest.approx(
            expected_kg_day, rel=0.01
        )
        assert e.metrics.coverage == 0.0
        assert e.metrics.battery_cycles is None

    def test_batch_equals_individual(self, houston_month):
        """Evaluating a batch must equal evaluating one by one."""
        be = BatchEvaluator(houston_month)
        comps = [
            MicrogridComposition(0, 0.0, 0),
            MicrogridComposition.from_mw(12.0, 0.0, 7.5),
            MicrogridComposition.from_mw(9.0, 8.0, 22.5),
        ]
        batch = be.evaluate(comps)
        for comp, from_batch in zip(comps, batch):
            solo = be.evaluate_one(comp)
            assert solo.metrics.grid_import_wh == pytest.approx(
                from_batch.metrics.grid_import_wh
            )
            assert solo.metrics.operational_emissions_kg == pytest.approx(
                from_batch.metrics.operational_emissions_kg
            )

    def test_energy_balance(self, houston_month):
        """generation + import = demand + export + battery losses + ΔSoC."""
        be = BatchEvaluator(houston_month)
        e = be.evaluate_one(MicrogridComposition.from_mw(9.0, 8.0, 22.5))
        m = e.metrics
        losses_and_dsoc = m.battery_charge_wh - m.battery_discharge_wh
        lhs = m.onsite_generation_wh + m.grid_import_wh
        rhs = m.demand_energy_wh + m.grid_export_wh + losses_and_dsoc
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_more_renewables_less_operational(self, houston_month):
        be = BatchEvaluator(houston_month)
        small = be.evaluate_one(MicrogridComposition.from_mw(3.0, 0.0, 0.0))
        big = be.evaluate_one(MicrogridComposition.from_mw(15.0, 16.0, 30.0))
        assert big.operational_tco2_per_day < small.operational_tco2_per_day
        assert big.metrics.coverage > small.metrics.coverage

    def test_battery_helps_coverage(self, houston):
        be = BatchEvaluator(houston)
        none = be.evaluate_one(MicrogridComposition.from_mw(12.0, 8.0, 0.0))
        some = be.evaluate_one(MicrogridComposition.from_mw(12.0, 8.0, 30.0))
        assert some.metrics.coverage > none.metrics.coverage

    def test_empty_batch(self, houston_month):
        assert BatchEvaluator(houston_month).evaluate([]) == []

    def test_soc_history_bounds(self, houston_month):
        be = BatchEvaluator(houston_month)
        soc = be.soc_history(MicrogridComposition.from_mw(9.0, 8.0, 22.5))
        assert soc.shape == (houston_month.n_steps + 1,)
        assert np.all(soc >= 0.0) and np.all(soc <= 0.95 + 1e-9)

    def test_soc_history_no_battery(self, houston_month):
        soc = BatchEvaluator(houston_month).soc_history(MicrogridComposition(1, 0.0, 0))
        assert np.all(soc == 0.0)


class TestCoverageGrid:
    def test_shape_and_monotonicity(self, houston_month):
        solar_levels = [0.0, 8_000.0, 16_000.0]
        wind_levels = [0, 3, 6]
        grid = coverage_grid(houston_month, solar_levels, wind_levels)
        assert grid.shape == (3, 3)
        # Monotone non-decreasing along both axes.
        assert np.all(np.diff(grid, axis=0) >= -1e-9)
        assert np.all(np.diff(grid, axis=1) >= -1e-9)
        assert grid[0, 0] == 0.0
        assert grid.max() <= 1.0

    def test_matches_batch_evaluator_without_battery(self, houston_month):
        """The F4 shortcut must agree with the general evaluator at B=0."""
        be = BatchEvaluator(houston_month)
        comp = MicrogridComposition.from_mw(9.0, 16.0, 0.0)
        full = be.evaluate_one(comp).metrics.coverage
        quick = coverage_grid(houston_month, [16_000.0], [3])[0, 0]
        assert quick == pytest.approx(full, abs=1e-9)


class TestCandidates:
    def _evaluated(self, scenario):
        space = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=3)
        return BatchEvaluator(scenario).evaluate(space.all_compositions())

    def test_threshold_protocol(self, houston_month):
        evaluated = self._evaluated(houston_month)
        candidates = threshold_candidates(evaluated, budgets_tco2=(3_000.0, 6_000.0))
        # baseline first, then under-budget picks, then the best.
        assert candidates[0].composition.is_grid_only
        assert candidates[0].embodied_tonnes == 0.0
        for c in candidates[1:-1]:
            assert c.embodied_tonnes <= 6_000.0
        best = min(evaluated, key=lambda e: (e.operational_tco2_per_day, e.embodied_tonnes))
        assert candidates[-1].operational_tco2_per_day == pytest.approx(
            best.operational_tco2_per_day
        )

    def test_threshold_budget_respected(self, houston_month):
        evaluated = self._evaluated(houston_month)
        candidates = threshold_candidates(
            evaluated, budgets_tco2=(5_000.0,), include_baseline=False, include_best=False
        )
        assert len(candidates) == 1
        assert candidates[0].embodied_tonnes <= 5_000.0
        # It must be the operational-best within budget.
        within = [e for e in evaluated if e.embodied_tonnes <= 5_000.0]
        assert candidates[0].operational_tco2_per_day == pytest.approx(
            min(e.operational_tco2_per_day for e in within)
        )

    def test_greedy_diversity_spread(self, houston_month):
        evaluated = self._evaluated(houston_month)
        front = pareto_front(evaluated)
        chosen = greedy_diversity_candidates(front, k=4)
        assert len(chosen) == min(4, len(front))
        # Ends of the front should be represented (max spread).
        embodied = [c.embodied_tonnes for c in chosen]
        front_embodied = [e.embodied_tonnes for e in front]
        assert min(embodied) == pytest.approx(min(front_embodied), rel=0.2)

    def test_kmeans_returns_members(self, houston_month):
        evaluated = self._evaluated(houston_month)
        chosen = kmeans_candidates(evaluated, k=3, seed=1)
        assert 1 <= len(chosen) <= 3
        ids = {e.composition for e in evaluated}
        assert all(c.composition in ids for c in chosen)

    def test_k_larger_than_set(self, houston_month):
        evaluated = self._evaluated(houston_month)[:3]
        assert len(greedy_diversity_candidates(evaluated, k=10)) == 3

    def test_validation(self):
        with pytest.raises(OptimizationError):
            threshold_candidates([])
        with pytest.raises(OptimizationError):
            greedy_diversity_candidates([], k=0)


class TestProjection:
    def _evaluated_pair(self, scenario):
        be = BatchEvaluator(scenario)
        baseline = be.evaluate_one(MicrogridComposition(0, 0.0, 0))
        big = be.evaluate_one(MicrogridComposition.from_mw(30.0, 40.0, 60.0))
        return baseline, big

    def test_projection_starts_at_embodied(self, houston):
        _, big = self._evaluated_pair(houston)
        proj = project_emissions(big, horizon_years=20.0)
        assert proj.total_tco2[0] == pytest.approx(big.embodied_tonnes)

    def test_projection_linear_rate(self, houston):
        baseline, _ = self._evaluated_pair(houston)
        proj = project_emissions(baseline, horizon_years=10.0)
        expected_10y = baseline.operational_tco2_per_day * 365.0 * 10.0
        assert proj.total_tco2[-1] == pytest.approx(expected_10y, rel=1e-9)

    def test_houston_crossover_near_paper_seven_years(self, houston):
        """§4.2: the grid-only baseline overtakes the full build-out after
        ≈7 years in Houston."""
        baseline, big = self._evaluated_pair(houston)
        projections = project_many([baseline, big], horizon_years=20.0)
        year = crossover_year(projections[0], projections[1])
        assert year is not None
        assert 5.0 < year < 9.5

    def test_berkeley_crossover_near_paper_twelve_years(self, berkeley):
        """§4.2: ≈12 years in Berkeley."""
        baseline, big = self._evaluated_pair(berkeley)
        projections = project_many([baseline, big], horizon_years=25.0)
        year = crossover_year(projections[0], projections[1])
        assert year is not None
        assert 9.0 < year < 15.0

    def test_battery_replacement_adds_steps(self, houston):
        _, big = self._evaluated_pair(houston)
        plain = project_emissions(big, horizon_years=20.0)
        with_repl = project_emissions(big, horizon_years=20.0, battery_replacement_years=10.0)
        battery_t = big.composition.battery_units * 465.0
        assert with_repl.total_tco2[-1] - plain.total_tco2[-1] == pytest.approx(
            2 * battery_t
        )

    def test_no_crossover_returns_none(self, houston):
        baseline, _ = self._evaluated_pair(houston)
        a = project_emissions(baseline, horizon_years=5.0)
        assert crossover_year(a, a) is None

    def test_validation(self, houston):
        baseline, _ = self._evaluated_pair(houston)
        with pytest.raises(ConfigurationError):
            project_emissions(baseline, horizon_years=0.0)
        with pytest.raises(ConfigurationError):
            project_emissions(baseline, battery_replacement_years=-1.0)


class TestParetoHelpers:
    def test_front_sorted_and_nondominated(self, houston_month):
        space = ParameterSpace(max_turbines=3, max_solar_increments=3, max_battery_units=2)
        evaluated = BatchEvaluator(houston_month).evaluate(space.all_compositions())
        front = pareto_front(evaluated)
        embodied = [e.embodied_tonnes for e in front]
        assert embodied == sorted(embodied)
        ops = [e.operational_tco2_per_day for e in front]
        assert all(a >= b for a, b in zip(ops, ops[1:]))  # trade-off curve

    def test_hypervolume_positive(self, houston_month):
        space = ParameterSpace(max_turbines=2, max_solar_increments=2, max_battery_units=1)
        evaluated = BatchEvaluator(houston_month).evaluate(space.all_compositions())
        hv = front_hypervolume(
            pareto_front(evaluated), reference=(50_000.0, 20.0)
        )
        assert hv > 0.0
