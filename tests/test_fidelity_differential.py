"""Differential oracle for the fidelity ladder's calibrated envelopes
(DESIGN.md §11).

The screening proofs of :class:`FidelityRacingEvaluator` lean on one
empirical claim: the per-(site, objective) error envelope calibrated on
:data:`CALIBRATION_PROBES` genuinely bounds the signed full-vs-cheap
member error of *every* candidate in the paper's design grid.  An
unsound envelope silently corrupts the front — a cheap value shifted by
a too-tight lower bound overstates a candidate's full-physics floor and
can "prove" domination of a true front member.  This file is the
property-fuzz harness that enforces the claim, mirroring
``test_kernel_differential.py``:

* seeded random draws — site, weather-year span, dunkelflaute
  severities, and candidate sets sampled from the full design grid —
  with a **hard failure** on any observed error outside the calibrated
  envelope, at every cheap ladder level;
* the downstream soundness property: the envelope-widened partial
  bound (exactly the screening computation) never exceeds the exact
  full-physics aggregate, for random member subsets under ``worst``,
  ``mean``, and ``cvar:0.25``;
* construction-level units on :func:`envelope_from_errors` (padding
  arithmetic, per-site separation, degenerate ranges, shape checks)
  and the :class:`FidelityLadder` spec grammar (round-trips and
  rejections) — the resume-identity surface;
* slow leave-one-probe-out cross-validations of the pad sizing, split
  to the ``tier2`` tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.composition import MicrogridComposition
from repro.core.ensemble import EnsembleSpec, build_ensemble
from repro.core.fastsim import evaluate_member_slice
from repro.core.fidelity import (
    CALIBRATION_PROBES,
    FIDELITY_LEVELS,
    FidelityLadder,
    calibrate_envelope,
    envelope_from_errors,
    sibling_stack,
)
from repro.core.metrics import aggregate_values
from repro.core.racing import NONNEGATIVE_OBJECTIVES, partial_lower_bound
from repro.exceptions import ConfigurationError

#: the fade axis is the interesting one — lo/mid use the linear law,
#: full uses rainflow — so it rides along with the paper's two.
OBJECTIVES = ("operational", "embodied", "fade")

SITES = ("houston", "berkeley")
CHEAP_LEVELS = ("lo", "mid")


# -- random problem generators ------------------------------------------------


def random_ensemble(rng: np.random.Generator, n_hours: int = 24 * 7):
    """A random (site, weather-span, severity-set) ensemble draw."""
    site = str(rng.choice(SITES))
    y0 = int(rng.integers(2020, 2023))
    years = f"{y0}-{y0 + int(rng.integers(1, 3))}"
    severities = rng.choice(
        [1.0, 1.25, 1.5], size=int(rng.integers(1, 3)), replace=False
    )
    spec = EnsembleSpec.parse(
        f"years={years},severity={':'.join(str(s) for s in severities)}",
        sites=(site,),
        n_hours=n_hours,
    )
    return build_ensemble(spec)


def random_candidates(
    rng: np.random.Generator, n: int
) -> "list[MicrogridComposition]":
    """``n`` distinct draws from the paper's full 1 089-point design grid."""
    comps = {
        MicrogridComposition(
            n_turbines=int(rng.integers(0, 11)),
            solar_kw=float(rng.integers(0, 11) * 4_000),
            battery_units=int(rng.integers(0, 9)),
        )
        for _ in range(3 * n)
    }
    return sorted(comps)[:n]


def observed_errors(ensemble, level: str, comps) -> "np.ndarray":
    """Signed per-member error ``full − level``, shape (members, comps, k)."""
    members = list(range(len(ensemble)))
    full = evaluate_member_slice(sibling_stack(ensemble, "full"), members, comps)
    cheap = evaluate_member_slice(sibling_stack(ensemble, level), members, comps)
    return np.array(
        [
            [
                np.subtract(f.objectives(OBJECTIVES), c.objectives(OBJECTIVES))
                for f, c in zip(frow, crow)
            ]
            for frow, crow in zip(full, cheap)
        ],
        dtype=np.float64,
    )


# -- the envelope-soundness property ------------------------------------------


class TestEnvelopeSoundness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_envelope_bounds_random_candidates(self, seed):
        """Every observed full-vs-cheap member error of a random candidate
        draw lies inside the calibrated envelope — at every cheap level.
        A violation here is a *correctness* bug, not a flake: screening
        proofs built on this envelope could prune a true front member."""
        rng = np.random.default_rng(3_000 + seed)
        ensemble = random_ensemble(rng)
        comps = random_candidates(rng, 12)
        for level in CHEAP_LEVELS:
            env = calibrate_envelope(ensemble, level, objectives=OBJECTIVES)
            errors = observed_errors(ensemble, level, comps)
            for m, scenario in enumerate(ensemble):
                site = scenario.location.name
                for c, comp in enumerate(comps):
                    assert env.contains(site, errors[m, c]), (
                        f"seed={seed} level={level} member={m} {comp}: "
                        f"error {errors[m, c]} escapes the calibrated "
                        f"envelope [{env.lower[site]}, {env.upper[site]}] — "
                        "screening proofs are unsound"
                    )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_certified_bound_never_exceeds_full_aggregate(self, seed):
        """The exact screening computation — cheap member values shifted by
        the envelope's lower error bound, clipped, folded through
        ``partial_lower_bound`` — is a true lower bound on the exact
        full-physics aggregate, for random member subsets."""
        rng = np.random.default_rng(5_000 + seed)
        ensemble = random_ensemble(rng)
        comps = random_candidates(rng, 8)
        members = list(range(len(ensemble)))
        full = evaluate_member_slice(sibling_stack(ensemble, "full"), members, comps)
        for level in CHEAP_LEVELS:
            env = calibrate_envelope(ensemble, level, objectives=OBJECTIVES)
            cheap = evaluate_member_slice(
                sibling_stack(ensemble, level), members, comps
            )
            n = len(ensemble)
            subset = sorted(
                rng.choice(n, size=int(rng.integers(1, n + 1)), replace=False)
            )
            for c in range(len(comps)):
                exact = np.array(
                    [full[m][c].objectives(OBJECTIVES) for m in members]
                )
                adjusted = np.array(
                    [
                        np.asarray(cheap[m][c].objectives(OBJECTIVES))
                        + env.lower[ensemble[m].location.name]
                        for m in subset
                    ]
                )
                for k, name in enumerate(OBJECTIVES):
                    column = adjusted[:, k]
                    nonneg = name in NONNEGATIVE_OBJECTIVES
                    if nonneg:
                        column = np.clip(column, 0.0, None)
                    for aggregate in ("worst", "mean", "cvar:0.25"):
                        bound = partial_lower_bound(
                            column, n, aggregate, nonnegative=nonneg
                        )
                        if bound is None:
                            continue
                        truth = aggregate_values(exact[:, k], aggregate)
                        assert bound <= truth + 1e-12, (
                            f"seed={seed} level={level} comp={comps[c]} "
                            f"{name}/{aggregate}: certified bound {bound} "
                            f"exceeds exact full aggregate {truth}"
                        )


# -- construction-level units --------------------------------------------------


class TestEnvelopeConstruction:
    def test_padding_arithmetic(self):
        errors = np.zeros((2, 2, 1))
        errors[:, :, 0] = [[1.0, 3.0], [2.0, 5.0]]
        env = envelope_from_errors("lo", ("operational",), errors, ["a", "a"], margin=0.5)
        pad = 0.5 * (5.0 - 1.0) + 0.25 * 5.0 + 1e-9
        assert env.lower["a"][0] == pytest.approx(1.0 - pad)
        assert env.upper["a"][0] == pytest.approx(5.0 + pad)

    def test_per_site_separation(self):
        errors = np.zeros((2, 1, 1))
        errors[0, 0, 0] = 10.0
        errors[1, 0, 0] = -10.0
        env = envelope_from_errors("lo", ("operational",), errors, ["a", "b"])
        assert env.upper["a"][0] > 10.0 and env.lower["a"][0] < 10.0
        assert env.upper["b"][0] > -10.0 and env.lower["b"][0] < -10.0
        assert env.upper["a"][0] > env.upper["b"][0]

    def test_degenerate_constant_error_keeps_nonzero_width(self):
        errors = np.full((1, 3, 2), 7.0)
        env = envelope_from_errors("lo", ("operational", "embodied"), errors, ["a"])
        assert np.all(env.upper["a"] > env.lower["a"])
        assert env.contains("a", np.array([7.0, 7.0]))

    def test_unknown_site_is_never_contained(self):
        env = envelope_from_errors("lo", ("operational",), np.zeros((1, 1, 1)), ["a"])
        assert not env.contains("nowhere", np.zeros(1))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            envelope_from_errors("lo", ("operational",), np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(ConfigurationError):
            envelope_from_errors("lo", ("operational",), np.zeros((3, 1, 1)), ["a", "b"])


class TestLadderSpec:
    @pytest.mark.parametrize(
        "spec",
        [
            "fidelity=lo,mid,full",
            "fidelity=lo,full",
            "fidelity=mid,full",
            "fidelity=full",
            "fidelity=lo,full,margin=0.75",
            "fidelity=lo,mid,full,margin=0",
        ],
    )
    def test_round_trip(self, spec):
        ladder = FidelityLadder.parse(spec)
        assert ladder.spec_string() == spec
        assert FidelityLadder.parse(ladder.spec_string()) == ladder

    def test_bare_tokens_are_implicit_levels(self):
        assert FidelityLadder.parse("lo,full") == FidelityLadder.parse("fidelity=lo,full")

    def test_default_margin_omitted_from_spec(self):
        assert FidelityLadder.parse("fidelity=lo,full,margin=0.5").spec_string() == (
            "fidelity=lo,full"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "fidelity=turbo,full",  # unknown level
            "fidelity=lo,mid",  # must end at full
            "fidelity=full,lo",  # not strictly increasing
            "fidelity=lo,lo,full",  # duplicate rung
            "fidelity=lo,full,margin=-0.1",  # negative margin
            "fidelity=lo,full,margin=",  # dangling key
            "fidelity=lo,full,margin=0.5,mid",  # bare token after margin=
            "fidelity=",  # empty ladder
        ],
    )
    def test_malformed_specs_are_errors(self, bad):
        with pytest.raises(ConfigurationError):
            FidelityLadder.parse(bad)

    def test_level_table_is_strictly_ordered(self):
        """The named levels really are a ladder: each named model swap is
        distinct and the canonical order ends at the full physics."""
        assert set(FIDELITY_LEVELS) == {"lo", "mid", "full"}
        assert FIDELITY_LEVELS["full"].transposition == "perez"
        assert FIDELITY_LEVELS["full"].battery_degradation == "rainflow"
        swaps = [
            (lvl.transposition, lvl.temperature_model, lvl.battery_degradation)
            for lvl in FIDELITY_LEVELS.values()
        ]
        assert len(set(swaps)) == len(swaps)


# -- slow cross-validations (tier2) -------------------------------------------


@pytest.mark.tier2
class TestCalibrationCrossValidation:
    """Pad-sizing stress tests: slow, split from the tier-1 gate."""

    @pytest.mark.parametrize("site", SITES)
    @pytest.mark.parametrize("level", CHEAP_LEVELS)
    def test_leave_one_probe_out(self, site, level):
        """An envelope calibrated *without* probe ``p`` must still contain
        ``p``'s own observed error — the pad covers at least one probe's
        worth of interpolation slack on both paper sites."""
        spec = EnsembleSpec.parse("years=2022-2023", sites=(site,), n_hours=24 * 7)
        ensemble = build_ensemble(spec)
        probes = list(CALIBRATION_PROBES)
        errors = observed_errors(ensemble, level, probes)
        sites = [s.location.name for s in ensemble]
        for p, probe in enumerate(probes):
            rest = np.delete(errors, p, axis=1)
            env = envelope_from_errors(level, OBJECTIVES, rest, sites)
            for m in range(len(ensemble)):
                assert env.contains(sites[m], errors[m, p]), (
                    f"holding out probe {probe} breaks containment of its "
                    f"own error on member {m} ({level}, {site})"
                )

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_envelope_bounds_longer_horizons(self, seed):
        """The soundness property again, on month-long members — seasonal
        regimes the week-long tier-1 draws never see."""
        rng = np.random.default_rng(9_000 + seed)
        ensemble = random_ensemble(rng, n_hours=24 * 28)
        comps = random_candidates(rng, 10)
        for level in CHEAP_LEVELS:
            env = calibrate_envelope(ensemble, level, objectives=OBJECTIVES)
            errors = observed_errors(ensemble, level, comps)
            for m, scenario in enumerate(ensemble):
                site = scenario.location.name
                for c, comp in enumerate(comps):
                    assert env.contains(site, errors[m, c]), (
                        f"seed={seed} level={level} member={m} {comp}: "
                        f"month-long error {errors[m, c]} escapes the envelope"
                    )
