"""TPE sampler degenerate splits: empty-``bad``, single-trial, identical objectives.

When front 0 is the entire completed set (every multi-objective trial
mutually non-dominated, or a single completed trial), the good/bad
split degenerates: ``bad`` is empty and the acquisition score collapses
to the good-KDE log-density alone (the bad-KDE contributes a constant
zero).  These tests pin that the sampler stays well-defined there —
in-bounds draws, deterministic under a seed, no crash — for numeric and
categorical parameters alike.
"""

import numpy as np
import pytest

from repro.blackbox import TPESampler, create_study
from repro.exceptions import OptimizationError


def _completed_study(values_list, directions=("minimize",), seed=0):
    """A study with one completed trial per entry of ``values_list``."""
    study = create_study(
        directions=list(directions),
        sampler=TPESampler(n_startup_trials=1, seed=seed),
        study_name="tpe-degenerate",
    )
    for values in values_list:
        trial = study.ask()
        trial.suggest_float("x", -1.0, 1.0)
        trial.suggest_int("k", 0, 5)
        trial.suggest_categorical("c", ["a", "b", "c"])
        study.tell(trial, values)
    return study


def _ask_all(study):
    trial = study.ask()
    x = trial.suggest_float("x", -1.0, 1.0)
    k = trial.suggest_int("k", 0, 5)
    c = trial.suggest_categorical("c", ["a", "b", "c"])
    return x, k, c


class TestEmptyBadSet:
    def test_front0_is_entire_set_multiobjective(self):
        # Three mutually non-dominated points: front 0 == everything,
        # so bad == [] and the score is the good-KDE alone.
        study = _completed_study([(0.0, 3.0), (1.0, 2.0), (2.0, 1.0)], ("minimize",) * 2)
        sampler = study.sampler
        good, bad = sampler._split(study, "x")
        assert len(good) == 3
        assert bad == []
        x, k, c = _ask_all(study)
        assert -1.0 <= x <= 1.0
        assert 0 <= k <= 5
        assert c in ("a", "b", "c")

    def test_empty_bad_is_deterministic_under_seed(self):
        draws = []
        for _ in range(2):
            study = _completed_study([(0.0, 1.0), (1.0, 0.0)], ("minimize",) * 2, seed=7)
            draws.append(_ask_all(study))
        assert draws[0] == draws[1]

    def test_empty_bad_kde_collapse_matches_good_only_score(self):
        # With bad empty, _kde_logpdf(candidates, bad) is exactly zero —
        # the acquisition ranks by good-density alone.
        sampler = TPESampler(seed=3)
        x = np.linspace(-1.0, 1.0, 5)
        assert np.array_equal(
            sampler._kde_logpdf(x, np.empty(0), bandwidth=0.25), np.zeros(5)
        )


class TestSingleTrial:
    def test_single_completed_trial(self):
        study = _completed_study([(0.5,)])
        good, bad = study.sampler._split(study, "x")
        assert len(good) == 1 and bad == []
        x, k, c = _ask_all(study)
        assert -1.0 <= x <= 1.0
        assert 0 <= k <= 5
        assert c in ("a", "b", "c")


class TestIdenticalObjectives:
    def test_all_identical_single_objective(self):
        # gamma still carves a non-empty "good" head off the stable sort.
        study = _completed_study([(1.0,)] * 8)
        good, bad = study.sampler._split(study, "x")
        assert len(good) == 2  # ceil(0.25 * 8)
        assert len(bad) == 6
        x, _, _ = _ask_all(study)
        assert -1.0 <= x <= 1.0

    def test_all_identical_multiobjective(self):
        # Identical vectors are mutually non-dominated: front 0 is the
        # entire set and bad collapses to empty.
        study = _completed_study([(1.0, 2.0)] * 6, ("minimize",) * 2)
        good, bad = study.sampler._split(study, "x")
        assert len(good) == 6
        assert bad == []
        x, _, _ = _ask_all(study)
        assert -1.0 <= x <= 1.0


class TestValidation:
    def test_n_candidates_must_be_positive(self):
        # Used to reach numpy as a negative array dimension.
        with pytest.raises(OptimizationError, match="candidate"):
            TPESampler(n_candidates=0)
