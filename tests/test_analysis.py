"""Analysis layer: tables, figure series, ASCII renderings, reports."""

import csv

import numpy as np
import pytest

from repro.analysis.figures import (
    ascii_heatmap,
    ascii_scatter,
    coverage_heatmap_series,
    pareto_front_series,
    projection_series,
    write_csv,
)
from repro.analysis.report import experiment_report
from repro.analysis.tables import candidate_table, format_table
from repro.core.candidates import paper_candidates
from repro.core.fastsim import BatchEvaluator
from repro.core.parameterspace import ParameterSpace
from repro.core.pareto import pareto_front
from repro.core.projection import project_many
from repro.core.study_runner import OptimizationRunner

SPACE = ParameterSpace(max_turbines=3, max_solar_increments=3, max_battery_units=2)


@pytest.fixture(scope="module")
def small_result(houston_month):
    return OptimizationRunner(houston_month, space=SPACE).run_exhaustive()


class TestTables:
    def test_candidate_table_rows(self, small_result):
        rows = candidate_table(paper_candidates(small_result.evaluated))
        assert rows
        assert set(rows[0]) >= {
            "wind_mw", "solar_mw", "battery_mwh",
            "embodied_tco2", "operational_tco2_day", "coverage_pct", "battery_cycles",
        }

    def test_format_table_aligned(self, small_result):
        rows = candidate_table(paper_candidates(small_result.evaluated))
        text = format_table(rows, title="Houston")
        lines = text.splitlines()
        assert lines[0] == "Houston"
        assert "Wind (MW)" in lines[1]
        # all body rows share the header width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1


class TestFigureSeries:
    def test_pareto_series_flags_candidates(self, small_result):
        front = pareto_front(small_result.evaluated)
        candidates = paper_candidates(small_result.evaluated)
        rows = pareto_front_series(front, candidates)
        assert any(r["is_candidate"] for r in rows)
        embodied = [r["embodied_tco2"] for r in rows]
        assert embodied == sorted(embodied)

    def test_projection_series_covers_all_candidates(self, small_result):
        candidates = paper_candidates(small_result.evaluated)
        projections = project_many(candidates, horizon_years=5.0, samples_per_year=2)
        rows = projection_series(projections)
        labels = {r["composition"] for r in rows}
        assert len(labels) == len(candidates)

    def test_coverage_series_grid(self):
        coverage = np.array([[0.1, 0.2], [0.3, 0.4]])
        rows = coverage_heatmap_series([0.0, 4_000.0], [0, 1], coverage)
        assert len(rows) == 4
        assert rows[0] == {"solar_kw": 0.0, "wind_kw": 0.0, "coverage_pct": 10.0}

    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(rows, tmp_path / "out" / "data.csv")
        with path.open() as fh:
            read_back = list(csv.DictReader(fh))
        assert read_back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_write_csv_empty(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestAscii:
    def test_scatter_contains_markers(self):
        text = ascii_scatter([0, 1, 2], [2, 1, 0], highlight=[True, False, False])
        assert "^" in text and "*" in text

    def test_scatter_empty(self):
        assert ascii_scatter([], []) == "(no data)"

    def test_heatmap_renders_scale(self):
        text = ascii_heatmap(np.array([[0.0, 1.0]]), ["r0"], ["c0", "c1"], title="T")
        assert text.startswith("T")
        assert "scale:" in text


class TestReport:
    def test_report_sections(self, small_result):
        text = experiment_report("houston-small", small_result, horizon_years=10.0)
        assert "=== houston-small ===" in text
        assert "Candidate solutions" in text
        assert "Pareto front" in text
        assert "projection" in text
