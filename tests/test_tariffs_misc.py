"""Coverage for remaining corners: tariffs, inverter diagnostics,
grid-sampler ordering, study callbacks, PVWatts result helpers."""

import numpy as np
import pytest

from repro.blackbox import GridSampler, RandomSampler, create_study
from repro.data.tariffs import CAISO_TOU, ERCOT_TOU, TouTariff, tou_tariff_for
from repro.exceptions import ConfigurationError
from repro.sam.solar.inverter import InverterModel


class TestTariffs:
    def test_lookup(self):
        assert tou_tariff_for("caiso") is CAISO_TOU
        assert tou_tariff_for("ERCOT") is ERCOT_TOU
        with pytest.raises(ConfigurationError):
            tou_tariff_for("PJM")

    def test_price_by_hour_structure(self):
        prices = CAISO_TOU.price_by_hour_of_day()
        assert prices.shape == (24,)
        # Off-peak at night, on-peak in the evening window.
        assert prices[2] == CAISO_TOU.off_peak_usd_kwh
        assert prices[18] == CAISO_TOU.on_peak_usd_kwh
        assert prices[10] == CAISO_TOU.mid_peak_usd_kwh

    def test_hourly_prices_tile(self):
        prices = CAISO_TOU.hourly_prices(50)
        assert prices.shape == (50,)
        assert prices[0] == prices[24]
        assert prices[2] == prices[26]

    def test_caiso_pricier_than_ercot(self):
        assert CAISO_TOU.price_by_hour_of_day().mean() > ERCOT_TOU.price_by_hour_of_day().mean()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TouTariff("bad", off_peak_usd_kwh=0.3, mid_peak_usd_kwh=0.2,
                      on_peak_usd_kwh=0.1)
        with pytest.raises(ConfigurationError):
            TouTariff("bad", off_peak_usd_kwh=0.1, mid_peak_usd_kwh=0.2,
                      on_peak_usd_kwh=0.3, on_peak_hours=((20, 30),))


class TestInverterDiagnostics:
    def test_clipping_fraction(self):
        inv = InverterModel(ac_rated_w=1_000.0)
        dc = np.array([0.0, 500.0, 2_000.0, 3_000.0])
        frac = inv.clipping_fraction(dc)
        # 3 producing samples, 2 clip.
        assert frac == pytest.approx(2.0 / 3.0)

    def test_clipping_fraction_no_production(self):
        inv = InverterModel(ac_rated_w=1_000.0)
        assert inv.clipping_fraction(np.zeros(5)) == 0.0


class TestGridSamplerOrdering:
    def test_point_enumeration_row_major(self):
        g = GridSampler({"a": [0, 1], "b": [10, 20, 30]})
        points = [g.point(i) for i in range(len(g))]
        assert points[0] == {"a": 0, "b": 10}
        assert points[1] == {"a": 0, "b": 20}
        assert points[3] == {"a": 1, "b": 10}
        assert len({tuple(sorted(p.items())) for p in points}) == 6

    def test_point_wraps_modulo(self):
        g = GridSampler({"a": [0, 1]})
        assert g.point(2) == g.point(0)


class TestStudyCallbacks:
    def test_callbacks_invoked_per_trial(self):
        seen = []
        study = create_study(direction="minimize", sampler=RandomSampler(seed=0))
        study.optimize(
            lambda t: t.suggest_float("x", 0, 1),
            n_trials=5,
            callbacks=[lambda s, t: seen.append(t.number)],
        )
        assert seen == [0, 1, 2, 3, 4]

    def test_minimized_values_sign_handling(self):
        study = create_study(directions=["minimize", "maximize"])
        arr = study.minimized_values([(1.0, 2.0), (3.0, 4.0)])
        assert np.allclose(arr, [[1.0, -2.0], [3.0, -4.0]])
