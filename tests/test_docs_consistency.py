"""Docs consistency: every cross-reference in docstrings resolves.

Three module docstrings cited a ``DESIGN.md`` that historically did not
exist; this test pins the invariant the other way round: any mention of
``DESIGN.md §N`` or ``README.md`` anywhere under ``src/`` must resolve
to the actual document (and section), every relative markdown link
inside the documents must point at a real file, every ``repro ...``
command shown in a fenced example must parse against the real argparse
tree, and the README's HTTP API table must list exactly the routes the
service registers.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: every prose document whose examples and links we pin
DOCUMENTS = ["README.md", "DESIGN.md", "ROADMAP.md", "docs/OPERATIONS.md"]

SECTION_REF = re.compile(r"DESIGN\.md\s*§(\d+)")
HEADING = re.compile(r"^##\s*§(\d+)\b", re.MULTILINE)
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")
# Any fence opener (language tag or not) — restricting to ```bash would
# desynchronize the pairing: an unmatched opener makes closing fences
# look like openers and prose like code.
FENCED = re.compile(r"^```[^\n]*\n(.*?)^```", re.MULTILINE | re.DOTALL)


def _python_sources() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def _example_commands(doc: Path) -> "list[str]":
    """Every ``repro ...`` command line in ``doc``'s fenced code blocks,
    with backslash continuations joined and comments/background ``&``
    stripped — exactly what a reader would paste into a shell."""
    commands = []
    for block in FENCED.findall(doc.read_text(encoding="utf-8")):
        logical, pending = [], ""
        for line in block.splitlines():
            pending += line.rstrip()
            if pending.endswith("\\"):
                pending = pending[:-1]
                continue
            logical.append(pending.strip())
            pending = ""
        for line in logical:
            line = re.sub(r"\s+#.*$", "", line).rstrip("& ").strip()
            if line.startswith(("repro ", "$ repro ")):
                commands.append(line.lstrip("$ "))
    return commands


def test_design_and_readme_exist():
    assert (REPO / "DESIGN.md").is_file()
    assert (REPO / "README.md").is_file()


def test_every_design_section_reference_resolves():
    headings = set(HEADING.findall((REPO / "DESIGN.md").read_text(encoding="utf-8")))
    assert headings, "DESIGN.md defines no '## §N' section anchors"
    dangling = []
    for path in _python_sources() + [REPO / doc for doc in DOCUMENTS]:
        for section in SECTION_REF.findall(path.read_text(encoding="utf-8")):
            if section not in headings:
                dangling.append(f"{path.relative_to(REPO)} → DESIGN.md §{section}")
    assert not dangling, f"dangling DESIGN.md section references: {dangling}"


def test_every_document_mention_resolves():
    missing = []
    for path in _python_sources():
        text = path.read_text(encoding="utf-8")
        for doc in re.findall(r"\b(DESIGN\.md|README\.md|ROADMAP\.md)\b", text):
            if not (REPO / doc).is_file():
                missing.append(f"{path.relative_to(REPO)} → {doc}")
    assert not missing, f"docstrings reference missing documents: {missing}"


@pytest.mark.parametrize("doc", DOCUMENTS)
def test_markdown_links_resolve(doc):
    path = REPO / doc
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (path.parent / target).exists():
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


def test_readme_documents_the_tier1_verify_command():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    assert "PYTHONPATH=src python -m pytest -x -q" in text


@pytest.mark.parametrize("doc", DOCUMENTS)
def test_documented_cli_examples_parse(doc):
    """Every ``repro ...`` line a reader could paste from a fenced
    example must survive the real argparse tree — docs cannot show
    flags the CLI does not have."""
    from repro.cli import build_parser

    commands = _example_commands(REPO / doc)
    if doc in ("README.md", "docs/OPERATIONS.md"):
        assert commands, f"{doc} shows no repro command examples"
    parser = build_parser()
    bad = []
    for command in commands:
        try:
            parser.parse_args(shlex.split(command)[1:])
        except SystemExit:
            bad.append(command)
    assert not bad, f"{doc} shows commands the CLI rejects: {bad}"


ENDPOINT_ROW = re.compile(r"^\|\s*(GET|POST)\s*\|\s*`([^`]+)`\s*\|", re.MULTILINE)


def test_readme_endpoint_table_matches_registered_routes():
    """The README's HTTP API reference lists exactly the routes the
    service registers (repro.service.http.ROUTES) — no drift either
    way."""
    from repro.service.http import ROUTES

    text = (REPO / "README.md").read_text(encoding="utf-8")
    documented = set(ENDPOINT_ROW.findall(text))
    registered = {(method, path) for method, path, _ in ROUTES}
    assert documented == registered, (
        f"README table vs ROUTES — undocumented: {registered - documented}, "
        f"stale rows: {documented - registered}"
    )


def test_readme_documents_the_json_status_flag():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    assert "repro study status" in text and "--json" in text


def test_readme_mentions_every_top_level_module():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    modules = sorted(
        p.parent.name for p in (SRC / "repro").glob("*/__init__.py")
    )
    for module in modules:
        assert f"repro.{module}" in text, f"README module map is missing repro.{module}"


class TestCIConsistency:
    """The CI workflow, `make ci`, and the docs must agree (DESIGN.md §8)."""

    def test_workflow_exists_and_runs_the_tier1_gate(self):
        workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
        assert "make test" in workflow
        assert "make bench" in workflow
        assert "continue-on-error: true" in workflow  # bench job never gates
        assert "benchmarks/check_regression.py" in workflow
        assert "benchmarks/output/*.json" in workflow  # artifact upload
        for python in ('"3.10"', '"3.12"'):
            assert python in workflow, f"CI matrix is missing {python}"
        assert "cache: pip" in workflow

    def test_make_ci_mirrors_the_workflow(self):
        """Every command `make ci` runs must appear verbatim as a
        workflow step, so contributors reproduce CI locally."""
        makefile = (REPO / "Makefile").read_text(encoding="utf-8")
        workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
        recipe = re.search(r"^ci:\n((?:\t.+\n)+)", makefile, re.MULTILINE)
        assert recipe, "Makefile has no `ci` target"
        commands = [line.strip() for line in recipe.group(1).splitlines()]
        assert commands, "`make ci` runs nothing"
        # `make test` is the first command's alias in the workflow; the
        # rest must appear verbatim.
        assert commands[0] == "PYTHONPATH=src python -m pytest -x -q"
        for command in commands[1:]:
            assert command in workflow, f"`make ci` step not in workflow: {command}"

    def test_readme_documents_make_ci_and_the_workflow(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "make ci" in text
        assert ".github/workflows/ci.yml" in text


def test_every_intree_sampler_implements_native_ask_tell():
    """DESIGN.md §10 documents all samplers as native ask/tell citizens;
    the legacy ``sample()`` shim (with its DeprecationWarning) exists
    only for out-of-tree subclasses.  Catch any in-tree sampler that
    silently falls back to the shim."""
    from repro.blackbox import samplers
    from repro.blackbox.samplers.base import Sampler

    in_tree = [
        cls
        for cls in (getattr(samplers, name) for name in samplers.__all__)
        if cls is not Sampler
    ]
    assert len(in_tree) >= 5
    for cls in in_tree:
        assert cls.ask is not Sampler.ask, (
            f"{cls.__name__} inherits the deprecated sample() shim "
            "instead of implementing ask() natively"
        )
