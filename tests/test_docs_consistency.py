"""Docs consistency: every cross-reference in docstrings resolves.

Three module docstrings cited a ``DESIGN.md`` that historically did not
exist; this test pins the invariant the other way round: any mention of
``DESIGN.md §N`` or ``README.md`` anywhere under ``src/`` must resolve
to the actual document (and section), and every relative markdown link
inside the top-level documents must point at a real file.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

SECTION_REF = re.compile(r"DESIGN\.md\s*§(\d+)")
HEADING = re.compile(r"^##\s*§(\d+)\b", re.MULTILINE)
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")


def _python_sources() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def test_design_and_readme_exist():
    assert (REPO / "DESIGN.md").is_file()
    assert (REPO / "README.md").is_file()


def test_every_design_section_reference_resolves():
    headings = set(HEADING.findall((REPO / "DESIGN.md").read_text(encoding="utf-8")))
    assert headings, "DESIGN.md defines no '## §N' section anchors"
    dangling = []
    for path in _python_sources() + [REPO / "README.md"]:
        for section in SECTION_REF.findall(path.read_text(encoding="utf-8")):
            if section not in headings:
                dangling.append(f"{path.relative_to(REPO)} → DESIGN.md §{section}")
    assert not dangling, f"dangling DESIGN.md section references: {dangling}"


def test_every_document_mention_resolves():
    missing = []
    for path in _python_sources():
        text = path.read_text(encoding="utf-8")
        for doc in re.findall(r"\b(DESIGN\.md|README\.md|ROADMAP\.md)\b", text):
            if not (REPO / doc).is_file():
                missing.append(f"{path.relative_to(REPO)} → {doc}")
    assert not missing, f"docstrings reference missing documents: {missing}"


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md"])
def test_markdown_links_resolve(doc):
    text = (REPO / doc).read_text(encoding="utf-8")
    broken = []
    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (REPO / target).exists():
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


def test_readme_documents_the_tier1_verify_command():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    assert "PYTHONPATH=src python -m pytest -x -q" in text


def test_readme_mentions_every_top_level_module():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    modules = sorted(
        p.parent.name for p in (SRC / "repro").glob("*/__init__.py")
    )
    for module in modules:
        assert f"repro.{module}" in text, f"README module map is missing repro.{module}"


class TestCIConsistency:
    """The CI workflow, `make ci`, and the docs must agree (DESIGN.md §8)."""

    def test_workflow_exists_and_runs_the_tier1_gate(self):
        workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
        assert "make test" in workflow
        assert "make bench" in workflow
        assert "continue-on-error: true" in workflow  # bench job never gates
        assert "benchmarks/check_regression.py" in workflow
        assert "benchmarks/output/*.json" in workflow  # artifact upload
        for python in ('"3.10"', '"3.12"'):
            assert python in workflow, f"CI matrix is missing {python}"
        assert "cache: pip" in workflow

    def test_make_ci_mirrors_the_workflow(self):
        """Every command `make ci` runs must appear verbatim as a
        workflow step, so contributors reproduce CI locally."""
        makefile = (REPO / "Makefile").read_text(encoding="utf-8")
        workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
        recipe = re.search(r"^ci:\n((?:\t.+\n)+)", makefile, re.MULTILINE)
        assert recipe, "Makefile has no `ci` target"
        commands = [line.strip() for line in recipe.group(1).splitlines()]
        assert commands, "`make ci` runs nothing"
        # `make test` is the first command's alias in the workflow; the
        # rest must appear verbatim.
        assert commands[0] == "PYTHONPATH=src python -m pytest -x -q"
        for command in commands[1:]:
            assert command in workflow, f"`make ci` step not in workflow: {command}"

    def test_readme_documents_make_ci_and_the_workflow(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "make ci" in text
        assert ".github/workflows/ci.yml" in text


def test_every_intree_sampler_implements_native_ask_tell():
    """DESIGN.md §10 documents all samplers as native ask/tell citizens;
    the legacy ``sample()`` shim (with its DeprecationWarning) exists
    only for out-of-tree subclasses.  Catch any in-tree sampler that
    silently falls back to the shim."""
    from repro.blackbox import samplers
    from repro.blackbox.samplers.base import Sampler

    in_tree = [
        cls
        for cls in (getattr(samplers, name) for name in samplers.__all__)
        if cls is not Sampler
    ]
    assert len(in_tree) >= 5
    for cls in in_tree:
        assert cls.ask is not Sampler.ask, (
            f"{cls.__name__} inherits the deprecated sample() shim "
            "instead of implementing ask() natively"
        )
