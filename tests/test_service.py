"""Study-as-a-service (repro.service, DESIGN.md §12).

Covers the service loop end to end: submit (direct and over HTTP),
worker drains the queue, heartbeat persistence and staleness, front
serialization parity with `repro study run`, and the headline
durability claim — kill -9 a worker process mid-study, POST resume,
and the finished front is bit-identical to an uninterrupted run's, on
both the journal and sqlite backends.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.study_spec import StudySpec
from repro.exceptions import OptimizationError
from repro.service import (
    HeartbeatStorage,
    StudyConflictError,
    StudyService,
    UnknownStudyError,
    front_csv,
    spec_from_document,
    study_status_document,
)
from repro.service.http import make_server

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: small-but-real search configuration shared by every test (one month
#: of the Houston year; ~1s per study through the vectorized path)
SMALL = dict(sites=("houston",), n_hours=720, n_trials=20, population=10, seed=7)


def small_spec(**overrides):
    return StudySpec(**{**SMALL, **overrides})


class TestServiceVerbs:
    def test_submit_queues_and_status_reports(self):
        service = StudyService("memory://")
        doc = service.submit(small_spec(), "s1")
        assert doc["service"]["state"] == "queued"
        assert doc["n_trials"] == 20
        assert doc["front_size"] is None

    def test_duplicate_submit_conflicts_and_hints_resume(self):
        service = StudyService("memory://")
        service.submit(small_spec(), "s1")
        with pytest.raises(StudyConflictError, match="resume"):
            service.submit(small_spec(), "s1")

    def test_unknown_study_raises(self):
        service = StudyService("memory://")
        with pytest.raises(UnknownStudyError, match="nope"):
            service.status("nope")

    def test_cancel_dequeues_and_worker_skips_it(self):
        service = StudyService("memory://")
        service.submit(small_spec(), "s1")
        assert service.cancel("s1")["service"]["state"] == "cancelled"
        assert service.worker_loop() == 0

    def test_worker_drains_the_queue_in_submit_order(self):
        service = StudyService("memory://")
        service.submit(small_spec(), "a")
        service.submit(small_spec(seed=8), "b")
        assert service.worker_loop() == 2
        for name in ("a", "b"):
            doc = service.status(name)
            assert doc["service"]["state"] == "done"
            assert doc["trials"]["complete"] == 20
            assert doc["front_size"] >= 1

    def test_done_study_requeues_and_reruns_idempotently(self):
        service = StudyService("memory://")
        service.submit(small_spec(), "s1")
        service.worker_loop()
        before = front_csv(service.storage.load_study("s1"))
        service.resume("s1")
        assert service.worker_loop() == 1
        assert front_csv(service.storage.load_study("s1")) == before

    def test_failed_study_is_marked_and_does_not_wedge_the_queue(self):
        service = StudyService("memory://")
        service.submit(small_spec(), "bad")
        service.submit(small_spec(seed=11), "good")
        # Sabotage the queued study: wipe an identity key so the worker's
        # from_metadata fails loudly.
        stored = service.storage.load_study("bad")
        md = dict(stored.metadata)
        del md["seed"]
        service.storage.update_metadata("bad", md)
        assert service.worker_loop() == 1  # only 'good' completed
        assert service.status("bad")["service"]["state"] == "failed"
        assert "seed" in service.status("bad")["service"]["error"]
        assert service.status("good")["service"]["state"] == "done"

    def test_spec_from_document_aliases_and_rejects_unknowns(self):
        spec, name = spec_from_document(
            {"sites": "houston", "trials": 30, "speculate": 2, "name": "n"}
        )
        assert (name, spec.n_trials, spec.pipeline) == ("n", 30, "speculate=2")
        with pytest.raises(OptimizationError, match="trails"):
            spec_from_document({"trails": 30})


class TestHeartbeat:
    def test_worker_persists_heartbeat_and_progress(self):
        service = StudyService("memory://")
        service.submit(small_spec(), "s1")
        service.worker_loop()
        doc = service.status("s1")
        assert doc["heartbeat"]["trials_done"] == 20
        assert doc["heartbeat"]["age_s"] >= 0.0
        assert doc["heartbeat"]["stale"] is False  # done, not running

    def test_stale_flag_requires_running_state_and_old_heartbeat(self):
        from repro.blackbox.storage.base import StoredStudy

        md = {"service": {"state": "running"}, "heartbeat_ts": 100.0}
        stored = StoredStudy(name="s", directions=["minimize"] * 2, metadata=md)
        doc = study_status_document(stored, stale_after=300.0, now=500.0)
        assert doc["heartbeat"]["stale"] is True
        assert doc["heartbeat"]["age_s"] == 400.0
        fresh = study_status_document(stored, stale_after=300.0, now=150.0)
        assert fresh["heartbeat"]["stale"] is False
        md["service"]["state"] = "done"
        done = study_status_document(stored, stale_after=300.0, now=500.0)
        assert done["heartbeat"]["stale"] is False

    def test_driver_metadata_writes_do_not_clobber_liveness(self):
        from repro.blackbox.storage import storage_from_url

        inner = storage_from_url("memory://")
        inner.create_study("s", ["minimize", "minimize"], {"n_trials": 5})
        wrapper = HeartbeatStorage(inner, "s", interval=0.0, clock=lambda: 42.0)
        wrapper.beat()
        # A driver rewriting metadata from its stale in-memory snapshot
        # (no heartbeat keys) must not erase the persisted liveness.
        wrapper.update_metadata("s", {"n_trials": 5, "batch": 10})
        md = inner.load_study("s").metadata
        assert md["heartbeat_ts"] == 42.0
        assert md["batch"] == 10

    def test_live_resume_is_refused_but_stale_resume_requeues(self):
        service = StudyService("memory://", stale_after=1e9)
        service.submit(small_spec(), "s1")
        stored = service.storage.load_study("s1")
        md = dict(stored.metadata)
        md["service"] = {"state": "running"}
        md["heartbeat_ts"] = service._clock()
        service.storage.update_metadata("s1", md)
        with pytest.raises(StudyConflictError, match="live heartbeat"):
            service.resume("s1")
        stale_service = StudyService(service.storage, stale_after=0.0)
        assert stale_service.resume("s1")["service"]["state"] == "queued"


def _http(url, method="GET", payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request) as response:
        body = response.read()
        kind = response.headers.get("Content-Type", "")
        return response.status, (json.loads(body) if "json" in kind else body.decode())


@pytest.fixture()
def http_service(tmp_path):
    """A bound HTTP server over a journal store, no worker threads."""
    service = StudyService(f"journal://{tmp_path}/svc.jsonl", stale_after=0.0)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


class TestHttpApi:
    def test_submit_status_front_round_trip(self, http_service):
        service, base = http_service
        status, doc = _http(
            f"{base}/studies",
            method="POST",
            payload={**SMALL, "sites": "houston", "name": "h1"},
        )
        assert status == 201 and doc["service"]["state"] == "queued"
        assert service.worker_loop() == 1
        status, listing = _http(f"{base}/studies")
        assert status == 200 and [d["name"] for d in listing["studies"]] == ["h1"]
        status, doc = _http(f"{base}/studies/h1")
        assert status == 200 and doc["service"]["state"] == "done"
        status, csv = _http(f"{base}/studies/h1/front.csv")
        assert status == 200 and csv.startswith("trial,value_0,value_1")
        assert csv == front_csv(service.storage.load_study("h1"))

    def test_error_statuses(self, http_service):
        service, base = http_service
        for url, method, payload, expected in (
            (f"{base}/studies/ghost", "GET", None, 404),
            (f"{base}/nope", "GET", None, 404),
            (f"{base}/studies", "POST", {"trails": 3}, 400),
        ):
            with pytest.raises(urllib.error.HTTPError) as err:
                _http(url, method=method, payload=payload)
            assert err.value.code == expected
        _http(f"{base}/studies", method="POST", payload={**SMALL, "sites": "houston", "name": "dup"})
        with pytest.raises(urllib.error.HTTPError) as err:
            _http(f"{base}/studies", method="POST", payload={**SMALL, "sites": "houston", "name": "dup"})
        assert err.value.code == 409

    @pytest.mark.parametrize("scheme", ["journal", "sqlite"])
    def test_http_submission_matches_cli_front_bit_for_bit(self, tmp_path, scheme):
        """End-to-end parity: the same (seed, spec) study submitted over
        HTTP and run via `repro study run` produce identical fronts."""
        suffix = "jsonl" if scheme == "journal" else "db"
        cli_store = f"{tmp_path}/cli.{suffix}"
        svc_store = f"{scheme}://{tmp_path}/svc.{suffix}"
        assert (
            main(
                ["study", "run", "--storage", cli_store, "--site", "houston",
                 "--trials", "20", "--population", "10", "--seed", "7",
                 "--set", "scenario.n_hours=720"]
            )
            == 0
        )
        service = StudyService(svc_store)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            _http(
                f"http://{host}:{port}/studies",
                method="POST",
                payload={**SMALL, "sites": "houston", "name": "parity"},
            )
            assert service.worker_loop() == 1
            _, http_csv = _http(f"http://{host}:{port}/studies/parity/front.csv")
        finally:
            server.shutdown()
            server.server_close()
        from repro.blackbox import storage_from_url

        cli_front = front_csv(storage_from_url(cli_store).load_study("houston-blackbox"))
        assert http_csv == cli_front


#: worker subprocess that SIGKILLs itself mid-study (after 12 trial
#: finishes: one full generation of 10 plus two trials of the next, so
#: death is strictly inside a generation) — what a real OOM/node loss
#: leaves behind: a 'running' study with a stalling heartbeat.
KILL_WORKER = textwrap.dedent(
    """
    import os, signal, sys
    from repro.service import StudyService

    service = StudyService(sys.argv[1], heartbeat_interval=0.0)
    storage = service.storage
    original = storage.record_trial_finish
    count = 0

    def killing_finish(name, trial):
        global count
        original(name, trial)
        count += 1
        if count >= 12:
            os.kill(os.getpid(), signal.SIGKILL)

    storage.record_trial_finish = killing_finish
    service.worker_loop()
    """
)


class TestKillTheWorker:
    @pytest.mark.parametrize("scheme", ["journal", "sqlite"])
    def test_sigkilled_worker_resumes_to_the_identical_front(self, tmp_path, scheme):
        suffix = "jsonl" if scheme == "journal" else "db"
        svc_store = f"{scheme}://{tmp_path}/svc.{suffix}"
        reference_store = f"{tmp_path}/ref.{suffix}"

        # The uninterrupted reference, via the plain CLI driver.
        assert (
            main(
                ["study", "run", "--storage", reference_store, "--site", "houston",
                 "--trials", "20", "--population", "10", "--seed", "7",
                 "--set", "scenario.n_hours=720"]
            )
            == 0
        )

        # Submit over HTTP, then hand the queue to a doomed worker process.
        service = StudyService(svc_store, stale_after=0.0)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            _http(
                f"{base}/studies",
                method="POST",
                payload={**SMALL, "sites": "houston", "name": "durable"},
            )
            env = {**os.environ, "PYTHONPATH": SRC}
            proc = subprocess.run(
                [sys.executable, "-c", KILL_WORKER, svc_store],
                env=env,
                capture_output=True,
                timeout=240,
            )
            assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

            # The kill really landed mid-study: a 'running' study with
            # more than one generation but less than the target.
            stored = service.storage.load_study("durable")
            n_recorded = len(stored.finished_trials())
            assert 10 <= n_recorded < 20, n_recorded
            assert (stored.metadata.get("service") or {}).get("state") == "running"

            # POST resume re-queues (the heartbeat is stale under
            # stale_after=0), and a healthy worker finishes the study.
            status, doc = _http(f"{base}/studies/durable/resume", method="POST")
            assert status == 202 and doc["service"]["state"] == "queued"
            assert service.worker_loop() == 1
            _, final_csv = _http(f"{base}/studies/durable/front.csv")
        finally:
            server.shutdown()
            server.server_close()

        from repro.blackbox import storage_from_url

        reference = storage_from_url(reference_store).load_study("houston-blackbox")
        assert final_csv == front_csv(reference)
        finished = service.storage.load_study("durable")
        assert len(finished.trials) == 20
        assert service.status("durable")["service"]["state"] == "done"
