"""Shared storage-contract suite: every backend, one set of semantics.

Parametrized over the in-memory, JSONL-journal, and SQLite backends
(DESIGN.md §7): whatever one backend guarantees — round-trip fidelity,
last-write-wins per trial number, tombstone resets, crash-durable
records (a real ``kill -9`` mid-run), resume-equivalence of the final
Pareto front — every backend must guarantee.  Sharded stores and the
merge operation are pinned against their single-store twins.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.blackbox import (
    InMemoryStorage,
    JournalStorage,
    NSGA2Sampler,
    RandomSampler,
    ShardedStorage,
    SQLiteStorage,
    TrialState,
    create_study,
    merge_stores,
    storage_from_url,
)
from repro.blackbox.storage import (
    discover_shards,
    open_study_storage,
    resolve_storage,
    shard_spec,
)
from repro.blackbox.trial import FrozenTrial
from repro.core.parameterspace import ParameterSpace
from repro.core.study_runner import OptimizationRunner
from repro.exceptions import OptimizationError

SMALL_SPACE = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=3)

BACKENDS = ["memory", "journal", "sqlite"]


class _Substrate:
    """One backend's data substrate: fresh instances over shared state."""

    def __init__(self, kind: str, tmp_path: Path):
        self.kind = kind
        self.persistent = kind != "memory"
        self._memory = InMemoryStorage()
        self._path = tmp_path / f"store.{'jsonl' if kind == 'journal' else 'db'}"

    def open(self):
        if self.kind == "memory":
            return self._memory  # process-local: "reopen" is the same dict
        if self.kind == "journal":
            return JournalStorage(self._path)
        return SQLiteStorage(self._path)


@pytest.fixture(params=BACKENDS)
def substrate(request, tmp_path) -> _Substrate:
    return _Substrate(request.param, tmp_path)


def objective(trial):
    x = trial.suggest_float("x", -1.0, 1.0)
    k = trial.suggest_int("k", 0, 5)
    return x * x + k


class TestContract:
    def test_round_trip_through_driver(self, substrate):
        storage = substrate.open()
        study = create_study(
            direction="minimize",
            sampler=RandomSampler(seed=1),
            study_name="s",
            storage=storage,
            metadata={"site": "houston", "n_trials": 5},
        )
        study.optimize(objective, n_trials=5)

        stored = substrate.open().load_study("s")
        assert stored is not None
        assert stored.directions == ["minimize"]
        assert stored.metadata == {"site": "houston", "n_trials": 5}
        assert [t.number for t in stored.finished_trials()] == list(range(5))
        assert [t.params for t in stored.finished_trials()] == [
            t.params for t in study.trials
        ]
        assert [t.values for t in stored.finished_trials()] == [
            t.values for t in study.trials
        ]

    def test_duplicate_create_raises(self, substrate):
        storage = substrate.open()
        storage.create_study("s", ["minimize"], {})
        with pytest.raises(OptimizationError, match="already exists"):
            substrate.open().create_study("s", ["minimize"], {})

    def test_unknown_study_loads_none(self, substrate):
        assert substrate.open().load_study("nope") is None

    def test_multiple_studies(self, substrate):
        storage = substrate.open()
        for name in ("a", "b"):
            storage.create_study(name, ["minimize"], {})
            storage.record_trial_finish(
                name, FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0,))
            )
        assert substrate.open().study_names() == ["a", "b"]

    def test_last_write_wins_per_number(self, substrate):
        storage = substrate.open()
        storage.create_study("s", ["minimize"], {})
        storage.record_trial_finish(
            "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0,))
        )
        storage.record_trial_finish(
            "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(2.0,))
        )
        stored = substrate.open().load_study("s")
        assert len(stored.trials) == 1
        assert stored.trials[0].values == (2.0,)

    def test_start_after_finish_resets_to_running(self, substrate):
        # The tombstone move resume-renumbering relies on: a bare start
        # record written after a finish makes the number replay as
        # RUNNING, which the next resume discards.
        storage = substrate.open()
        storage.create_study("s", ["minimize"], {})
        storage.record_trial_finish(
            "s", FrozenTrial(number=3, state=TrialState.COMPLETE, values=(1.0,))
        )
        storage.record_trial_start("s", FrozenTrial(number=3))
        stored = substrate.open().load_study("s")
        assert stored.trials_by_number[3].state == TrialState.RUNNING
        assert stored.finished_trials() == []

    def test_loaded_trials_do_not_alias(self, substrate):
        storage = substrate.open()
        study = create_study(storage=storage, study_name="s", sampler=RandomSampler(seed=2))
        study.optimize(objective, n_trials=2)
        loaded = storage.load_study("s")
        loaded.trials[0].params["x"] = 999.0
        assert storage.load_study("s").trials[0].params["x"] != 999.0

    def test_persists_across_instances(self, substrate):
        if not substrate.persistent:
            pytest.skip("memory backend is process-local by design")
        with substrate.open() as storage:
            study = create_study(
                storage=storage, study_name="s", sampler=RandomSampler(seed=3)
            )
            study.optimize(objective, n_trials=3)
        reloaded = substrate.open().load_study("s")
        assert [t.values for t in reloaded.finished_trials()] == [
            t.values for t in study.trials
        ]

    def test_load_if_exists_resumes_numbering(self, substrate):
        first = create_study(
            storage=substrate.open(), study_name="s", sampler=RandomSampler(seed=4)
        )
        first.optimize(objective, n_trials=4)
        resumed = create_study(
            storage=substrate.open(),
            study_name="s",
            sampler=RandomSampler(seed=4),
            load_if_exists=True,
        )
        assert [t.number for t in resumed.trials] == [0, 1, 2, 3]
        resumed.optimize(objective, n_trials=2)
        assert len(substrate.open().load_study("s").finished_trials()) == 6


class TestResumeEquivalence:
    """A killed-and-resumed NSGA-II study reaches the identical final
    front as an uninterrupted run — on every backend."""

    N_TRIALS = 40
    POP = 10

    def _run(self, scenario, storage, n_trials, load_if_exists=False):
        return OptimizationRunner(scenario, space=SMALL_SPACE).run_blackbox(
            n_trials=n_trials,
            sampler=NSGA2Sampler(population_size=self.POP, seed=42),
            storage=storage,
            study_name="resume-eq",
            load_if_exists=load_if_exists,
        )

    def test_resumed_front_identical(self, houston_month, substrate):
        if not substrate.persistent:
            pytest.skip("resume across processes needs a persistent backend")
        full_substrate = _Substrate(substrate.kind, substrate._path.parent / "full")
        full_substrate._path.parent.mkdir(exist_ok=True)
        full = self._run(houston_month, full_substrate.open(), self.N_TRIALS)

        self._run(houston_month, substrate.open(), 15)  # killed mid-gen 2
        resumed = self._run(
            houston_month, substrate.open(), self.N_TRIALS, load_if_exists=True
        )
        assert [t.params for t in resumed.study.trials] == [
            t.params for t in full.study.trials
        ]
        assert [t.values for t in resumed.study.trials] == [
            t.values for t in full.study.trials
        ]


KILL_CHILD = textwrap.dedent(
    """
    import os, signal, sys

    from repro.blackbox import RandomSampler, create_study

    spec, kill_after = sys.argv[1], int(sys.argv[2])
    study = create_study(
        direction="minimize", sampler=RandomSampler(seed=9),
        study_name="k", storage=spec,
    )
    study.sampler.per_trial_seeding = True  # the resume-reproducible mode
    done = 0

    def objective(trial):
        global done
        x = trial.suggest_float("x", -1.0, 1.0)
        k = trial.suggest_int("k", 0, 5)
        if done >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)  # the real thing
        done += 1
        return x * x + k

    study.optimize(objective, n_trials=100)
    """
)


class TestKillDashNine:
    """A genuine ``kill -9`` mid-run: the process dies inside an
    objective, after start records were committed; the surviving records
    must replay cleanly and resume must re-ask the lost trials."""

    @pytest.mark.parametrize("kind", ["journal", "sqlite"])
    def test_sigkill_survivors_replay_and_resume(self, tmp_path, kind):
        spec = str(tmp_path / ("k.jsonl" if kind == "journal" else "k.db"))
        script = tmp_path / "child.py"
        script.write_text(KILL_CHILD)
        kill_after = 7
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), spec, str(kill_after)],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        stored = storage_from_url(spec).load_study("k")
        assert stored is not None
        finished = stored.finished_trials()
        assert len(finished) == kill_after
        # The in-flight trial left a committed start record but no finish.
        assert stored.trials_by_number[kill_after].state == TrialState.RUNNING

        # Resume re-asks the lost number and runs to the full target; the
        # per-trial RNG streams make the draws identical to an
        # uninterrupted run of the same seeded study.
        resumed = create_study(
            direction="minimize",
            sampler=RandomSampler(seed=9),
            study_name="k",
            storage=spec,
            load_if_exists=True,
        )
        resumed.sampler.per_trial_seeding = True
        assert len(resumed.trials) == kill_after
        resumed.optimize(objective, n_trials=12 - len(resumed.trials))

        reference = create_study(
            direction="minimize", sampler=RandomSampler(seed=9), study_name="ref"
        )
        reference.sampler.per_trial_seeding = True
        reference.optimize(objective, n_trials=12)
        assert [t.params for t in resumed.trials] == [
            t.params for t in reference.trials
        ]


class TestShardedStorage:
    def _drive(self, storage, seed=5, n=9):
        study = create_study(
            direction="minimize",
            sampler=RandomSampler(seed=seed),
            study_name="s",
            storage=storage,
            metadata={"n_trials": n},
        )
        study.sampler.per_trial_seeding = True
        study.optimize(objective, n_trials=n)
        return study

    def test_routes_by_number_and_unions_on_load(self, tmp_path):
        shards = [JournalStorage(tmp_path / f"s.jsonl.shard{i}") for i in range(3)]
        storage = ShardedStorage(shards)
        self._drive(storage)
        # Trial n lives in shard n % W — and only there.
        for i, shard in enumerate(shards):
            numbers = sorted(shard.load_study("s").trials_by_number)
            assert numbers == [n for n in range(9) if n % 3 == i]
        merged = storage.load_study("s")
        assert sorted(merged.trials_by_number) == list(range(9))
        assert merged.metadata == {"n_trials": 9}

    def test_sharded_equals_single_store(self, tmp_path):
        single = self._drive(JournalStorage(tmp_path / "single.jsonl"))
        sharded = self._drive(
            ShardedStorage(
                [SQLiteStorage(tmp_path / f"s.db.shard{i}") for i in range(2)]
            )
        )
        assert [t.params for t in single.trials] == [t.params for t in sharded.trials]
        assert [t.values for t in single.trials] == [t.values for t in sharded.trials]

    def test_merge_matches_single_store_front(self, tmp_path):
        self._drive(JournalStorage(tmp_path / "single.jsonl"))
        shards = [SQLiteStorage(tmp_path / f"m.db.shard{i}") for i in range(2)]
        self._drive(ShardedStorage(shards))

        dest = SQLiteStorage(tmp_path / "merged.db")
        merged = merge_stores(shards, dest)
        single = JournalStorage(tmp_path / "single.jsonl").load_study("s")
        assert [t.params for t in merged.finished_trials()] == [
            t.params for t in single.finished_trials()
        ]
        assert [t.values for t in merged.finished_trials()] == [
            t.values for t in single.finished_trials()
        ]
        assert merged.metadata == single.metadata

    def test_merge_renumbers_across_gaps(self, tmp_path):
        shards = [InMemoryStorage(), InMemoryStorage()]
        for shard in shards:
            shard.create_study("s", ["minimize"], {"shards": 2})
        # Shard 0 holds finished 0 and an in-flight 2; shard 1 holds 1.
        shards[0].record_trial_finish(
            "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0,))
        )
        shards[1].record_trial_finish(
            "s", FrozenTrial(number=1, state=TrialState.COMPLETE, values=(2.0,))
        )
        shards[0].record_trial_start("s", FrozenTrial(number=2))

        merged = merge_stores(shards, InMemoryStorage())
        assert [(t.number, t.values) for t in merged.trials] == [
            (0, (1.0,)),
            (1, (2.0,)),
        ]
        assert merged.metadata == {}  # the shards key does not survive a merge

    def test_merge_refuses_existing_destination(self, tmp_path):
        src = InMemoryStorage()
        src.create_study("s", ["minimize"], {})
        dest = InMemoryStorage()
        dest.create_study("s", ["minimize"], {})
        with pytest.raises(OptimizationError, match="destination"):
            merge_stores([src], dest)

    def test_merge_requires_unambiguous_name(self):
        src = InMemoryStorage()
        src.create_study("a", ["minimize"], {})
        src.create_study("b", ["minimize"], {})
        with pytest.raises(OptimizationError, match="study_name"):
            merge_stores([src], InMemoryStorage())


class TestRegistry:
    def test_scheme_resolution(self, tmp_path):
        assert isinstance(storage_from_url("memory://"), InMemoryStorage)
        j = storage_from_url(f"journal:///{tmp_path}/s.jsonl")
        assert isinstance(j, JournalStorage)
        s = storage_from_url(f"sqlite:///{tmp_path}/s.db")
        assert isinstance(s, SQLiteStorage)

    def test_sqlalchemy_style_paths(self):
        assert str(storage_from_url("journal:///rel.jsonl").path) == "rel.jsonl"
        assert str(storage_from_url("sqlite:////abs/s.db").path) == "/abs/s.db"

    def test_bare_path_extension_dispatch(self, tmp_path):
        assert isinstance(storage_from_url(tmp_path / "s.jsonl"), JournalStorage)
        assert isinstance(storage_from_url(tmp_path / "s.db"), SQLiteStorage)
        assert isinstance(storage_from_url(tmp_path / "s.sqlite3"), SQLiteStorage)
        # Shard files keep the parent store's backend.
        assert isinstance(storage_from_url(tmp_path / "s.db.shard0"), SQLiteStorage)
        assert isinstance(storage_from_url(tmp_path / "s.jsonl.shard1"), JournalStorage)

    def test_unknown_scheme_raises(self):
        with pytest.raises(OptimizationError, match="unknown storage scheme"):
            storage_from_url("redis://s")

    def test_resolve_passthrough_and_none(self):
        backend = InMemoryStorage()
        assert resolve_storage(backend) is backend
        assert resolve_storage(None) is None
        with pytest.raises(OptimizationError, match="spec string"):
            resolve_storage(backend, shards=2)

    def test_resolve_shards(self, tmp_path):
        sharded = resolve_storage(str(tmp_path / "s.db"), shards=3)
        assert isinstance(sharded, ShardedStorage)
        assert [str(s.path) for s in sharded.shards] == [
            str(tmp_path / f"s.db.shard{i}") for i in range(3)
        ]
        assert all(isinstance(s, SQLiteStorage) for s in sharded.shards)

    def test_create_study_accepts_spec_strings(self, tmp_path):
        spec = f"sqlite:///{tmp_path}/via-url.db"
        study = create_study(storage=spec, study_name="s", sampler=RandomSampler(seed=6))
        study.optimize(objective, n_trials=2)
        assert len(storage_from_url(spec).load_study("s").finished_trials()) == 2

    def test_shard_discovery(self, tmp_path):
        base = str(tmp_path / "d.jsonl")
        storage = resolve_storage(base, shards=2)
        storage.create_study("s", ["minimize"], {"shards": 2})
        storage.record_trial_finish(
            "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(1.0,))
        )
        assert discover_shards(base) == 2
        assert shard_spec(base, 0) == base + ".shard0"
        reopened = open_study_storage(base)
        assert isinstance(reopened, ShardedStorage)
        assert len(reopened.load_study("s").finished_trials()) == 1


class TestUpdateMetadata:
    def test_update_replaces_and_persists(self, substrate):
        storage = substrate.open()
        storage.create_study("s", ["minimize"], {"n_trials": 10})
        storage.update_metadata("s", {"n_trials": 10, "batch": 4})
        assert substrate.open().load_study("s").metadata == {
            "n_trials": 10,
            "batch": 4,
        }

    def test_update_unknown_study_raises(self, substrate):
        storage = substrate.open()
        storage.create_study("s", ["minimize"], {})
        with pytest.raises(OptimizationError, match="unknown study"):
            storage.update_metadata("nope", {"batch": 4})

    def test_journal_compaction_folds_meta_ops_into_create(self, tmp_path):
        storage = JournalStorage(tmp_path / "j.jsonl")
        storage.create_study("s", ["minimize"], {"n_trials": 10})
        storage.update_metadata("s", {"n_trials": 10, "batch": 4})
        before, after = storage.compact()
        assert before == 2 and after == 1
        assert JournalStorage(tmp_path / "j.jsonl").load_study("s").metadata == {
            "n_trials": 10,
            "batch": 4,
        }

    def test_sharded_update_reaches_every_shard(self, tmp_path):
        shards = [InMemoryStorage(), InMemoryStorage()]
        storage = ShardedStorage(shards)
        storage.create_study("s", ["minimize"], {})
        storage.update_metadata("s", {"batch": 4})
        for shard in shards:  # each shard file stays self-describing
            assert shard.load_study("s").metadata == {"batch": 4}


class TestJournalStaleAppendHandle:
    def test_append_survives_concurrent_compaction(self, tmp_path):
        # Writer A holds an open append handle; another instance
        # compacts (atomic-replaces) the file.  A's next append must
        # land in the *new* inode, not the unlinked old one.
        path = tmp_path / "j.jsonl"
        writer = JournalStorage(path)
        writer.create_study("s", ["minimize"], {})
        for value in (1.0, 2.0):
            writer.record_trial_finish(
                "s", FrozenTrial(number=0, state=TrialState.COMPLETE, values=(value,))
            )
        JournalStorage(path).compact()
        writer.record_trial_finish(
            "s", FrozenTrial(number=1, state=TrialState.COMPLETE, values=(3.0,))
        )
        stored = JournalStorage(path).load_study("s")
        assert stored.trials_by_number[0].values == (2.0,)
        assert stored.trials_by_number[1].values == (3.0,)


class TestFidelityLadderContract:
    """The fidelity ladder spec (DESIGN.md §11) is resume identity, like
    the racing schedule: persisted in study metadata on every backend,
    round-tripping bit-exactly, and enforced with a hard error when a
    resume names a different (or no) ladder."""

    def _run(self, scenario, storage, n_trials, load=False, fidelity="fidelity=lo,full"):
        return OptimizationRunner(scenario, space=SMALL_SPACE, fidelity=fidelity).run_blackbox(
            n_trials=n_trials,
            sampler=NSGA2Sampler(population_size=10, seed=42),
            storage=storage,
            study_name="laddered",
            load_if_exists=load,
        )

    def test_ladder_persists_and_mismatch_is_hard_error(self, houston_month, substrate):
        self._run(houston_month, substrate.open(), 10)
        if substrate.persistent:
            stored = substrate.open().load_study("laddered")
            assert stored.metadata["fidelity"] == "fidelity=lo,full"
        for wrong in (None, "fidelity=lo,mid,full", "fidelity=lo,full,margin=0.9"):
            with pytest.raises(OptimizationError, match="fidelity"):
                self._run(houston_month, substrate.open(), 20, load=True, fidelity=wrong)
        # the identical ladder resumes cleanly
        resumed = self._run(houston_month, substrate.open(), 20, load=True)
        assert len(resumed.study.trials) == 20

    def test_ladder_cannot_be_added_on_resume(self, houston_month, substrate):
        self._run(houston_month, substrate.open(), 10, fidelity=None)
        with pytest.raises(OptimizationError, match="fidelity"):
            self._run(houston_month, substrate.open(), 20, load=True)
