"""Parameter distributions (repro.blackbox.distributions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.blackbox.distributions import (
    CategoricalDistribution,
    FloatDistribution,
    IntDistribution,
)
from repro.exceptions import OptimizationError

RNG = np.random.default_rng(7)


class TestFloat:
    def test_sample_in_domain(self):
        dist = FloatDistribution(-2.0, 5.0)
        for _ in range(50):
            assert dist.contains(dist.sample(RNG))

    def test_step_snapping(self):
        dist = FloatDistribution(0.0, 10.0, step=2.5)
        values = {dist.sample(RNG) for _ in range(100)}
        assert values <= {0.0, 2.5, 5.0, 7.5, 10.0}

    def test_log_sampling_positive(self):
        dist = FloatDistribution(1e-4, 1e2, log=True)
        samples = [dist.sample(RNG) for _ in range(100)]
        assert all(1e-4 <= s <= 1e2 for s in samples)
        # Log sampling should produce many small values.
        assert sum(1 for s in samples if s < 1.0) > 20

    def test_grid_requires_step(self):
        with pytest.raises(OptimizationError):
            FloatDistribution(0.0, 1.0).grid()
        assert FloatDistribution(0.0, 1.0, step=0.5).grid() == [0.0, 0.5, 1.0]

    def test_mutation_stays_in_domain(self):
        dist = FloatDistribution(0.0, 1.0)
        v = 0.5
        for _ in range(50):
            v = dist.mutate(v, RNG)
            assert dist.contains(v)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            FloatDistribution(2.0, 1.0)
        with pytest.raises(OptimizationError):
            FloatDistribution(-1.0, 1.0, log=True)
        with pytest.raises(OptimizationError):
            FloatDistribution(0.0, 1.0, step=-0.1)
        with pytest.raises(OptimizationError):
            FloatDistribution(1.0, 2.0, step=0.5, log=True)


class TestInt:
    def test_sample_respects_step(self):
        dist = IntDistribution(0, 10, step=5)
        values = {dist.sample(RNG) for _ in range(50)}
        assert values <= {0, 5, 10}

    def test_grid(self):
        assert IntDistribution(0, 9, step=3).grid() == [0, 3, 6, 9]

    def test_contains_checks_alignment(self):
        dist = IntDistribution(0, 10, step=2)
        assert dist.contains(4)
        assert not dist.contains(3)
        assert not dist.contains(2.5)

    def test_mutation_snaps(self):
        dist = IntDistribution(0, 10, step=2)
        for _ in range(50):
            assert dist.contains(dist.mutate(4, RNG))

    def test_validation(self):
        with pytest.raises(OptimizationError):
            IntDistribution(5, 1)
        with pytest.raises(OptimizationError):
            IntDistribution(0, 5, step=0)


class TestCategorical:
    def test_sample_from_choices(self):
        dist = CategoricalDistribution(["a", "b", "c"])
        assert {dist.sample(RNG) for _ in range(50)} == {"a", "b", "c"}

    def test_mutation_changes_value(self):
        dist = CategoricalDistribution(["a", "b", "c"])
        assert dist.mutate("a", RNG) != "a"

    def test_single_choice_mutation_identity(self):
        dist = CategoricalDistribution(["only"])
        assert dist.mutate("only", RNG) == "only"

    def test_empty_rejected(self):
        with pytest.raises(OptimizationError):
            CategoricalDistribution([])


@given(
    low=st.integers(min_value=-100, max_value=100),
    span=st.integers(min_value=0, max_value=50),
    step=st.integers(min_value=1, max_value=7),
)
def test_property_int_grid_all_contained(low, span, step):
    dist = IntDistribution(low, low + span, step=step)
    for v in dist.grid():
        assert dist.contains(v)
