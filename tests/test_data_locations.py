"""Site registry and climate validation (repro.data.locations)."""

import pytest

from repro.data.locations import (
    BERKELEY,
    HOUSTON,
    ClearnessClimate,
    Location,
    WindClimate,
    get_location,
    register_location,
)
from repro.exceptions import ConfigurationError


class TestBuiltinSites:
    def test_lookup_case_insensitive(self):
        assert get_location("Houston") is HOUSTON
        assert get_location("  berkeley ") is BERKELEY

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(ConfigurationError, match="berkeley"):
            get_location("atlantis")

    def test_paper_grid_regions(self):
        assert BERKELEY.grid_region == "CAISO"
        assert HOUSTON.grid_region == "ERCOT"

    def test_contrasting_profiles(self):
        # The paper picked the sites for contrasting resources: Houston
        # windier, Berkeley sunnier.
        assert HOUSTON.wind_climate.mean_speed_ms > BERKELEY.wind_climate.mean_speed_ms
        assert (
            BERKELEY.solar_climate.mean_summer > HOUSTON.solar_climate.mean_summer
        )

    def test_texas_wind_is_nocturnal(self):
        assert HOUSTON.wind_climate.diurnal_peak_hour < 6.0
        assert BERKELEY.wind_climate.diurnal_peak_hour > 12.0


class TestValidation:
    def test_clearness_bounds(self):
        with pytest.raises(ConfigurationError):
            ClearnessClimate(mean_winter=0.0, mean_summer=0.5, variability=0.1, persistence=0.5)
        with pytest.raises(ConfigurationError):
            ClearnessClimate(mean_winter=0.5, mean_summer=0.5, variability=0.1, persistence=1.0)

    def test_wind_bounds(self):
        with pytest.raises(ConfigurationError):
            WindClimate(
                mean_speed_ms=-1.0,
                weibull_k=2.0,
                reference_height_m=100.0,
                shear_exponent=0.14,
                diurnal_amplitude=0.1,
                seasonal_amplitude=0.1,
                persistence_hours=10.0,
            )
        with pytest.raises(ConfigurationError):
            WindClimate(
                mean_speed_ms=5.0,
                weibull_k=9.0,
                reference_height_m=100.0,
                shear_exponent=0.14,
                diurnal_amplitude=0.1,
                seasonal_amplitude=0.1,
                persistence_hours=10.0,
            )

    def test_latitude_validation(self):
        with pytest.raises(ConfigurationError):
            Location(
                name="bad",
                latitude_deg=95.0,
                longitude_deg=0.0,
                timezone_hours=0.0,
                elevation_m=0.0,
                grid_region="CAISO",
                solar_climate=BERKELEY.solar_climate,
                wind_climate=BERKELEY.wind_climate,
            )


class TestRegistry:
    def test_register_and_fetch(self):
        custom = Location(
            name="testville",
            latitude_deg=45.0,
            longitude_deg=10.0,
            timezone_hours=1.0,
            elevation_m=100.0,
            grid_region="CAISO",
            solar_climate=BERKELEY.solar_climate,
            wind_climate=BERKELEY.wind_climate,
        )
        register_location(custom)
        assert get_location("testville") is custom
        with pytest.raises(ConfigurationError):
            register_location(custom)  # duplicate
        register_location(custom, overwrite=True)  # allowed
