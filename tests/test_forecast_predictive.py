"""Forecast generation and the predictive charge controller."""

import numpy as np
import pytest

from repro.cosim import (
    Actor,
    CLCBattery,
    ConstantSignal,
    GridConnection,
    Microgrid,
    PredictiveChargeController,
)
from repro.data.forecast import ForecastModel
from repro.exceptions import ConfigurationError

HOUR = 3600.0


def truth_profile(n=240):
    hours = np.arange(n)
    return 1_000.0 + 300.0 * np.sin(2 * np.pi * hours / 24.0)


class TestForecastModel:
    def test_deterministic_per_issue(self):
        model = ForecastModel(truth_profile(), name="t")
        a = model.issue(10, 24)
        b = model.issue(10, 24)
        assert np.array_equal(a, b)

    def test_distinct_issues_differ(self):
        model = ForecastModel(truth_profile(), name="t")
        assert not np.array_equal(model.issue(10, 24), model.issue(11, 24))

    def test_error_grows_with_lead(self):
        model = ForecastModel(truth_profile(), name="t", error_at_1h=0.05,
                              error_growth_per_sqrt_hour=0.05)
        short = model.rms_error(1)
        long = model.rms_error(24)
        assert long > short

    def test_short_lead_accurate(self):
        model = ForecastModel(truth_profile(), name="t")
        assert model.rms_error(1) < 0.12

    def test_nonnegative_clipping(self):
        truth = np.full(100, 1.0)
        model = ForecastModel(truth, name="tiny", error_at_1h=5.0)
        fc = model.issue(0, 48)
        assert np.all(fc >= 0.0)

    def test_perfect_forecast_limit(self):
        model = ForecastModel(truth_profile(), name="perfect", error_at_1h=0.0,
                              error_growth_per_sqrt_hour=0.0)
        fc = model.issue(5, 12)
        expected = truth_profile()[6:18]
        assert np.allclose(fc, expected)

    def test_wraps_around_year(self):
        truth = truth_profile(48)
        model = ForecastModel(truth, name="wrap", error_at_1h=0.0,
                              error_growth_per_sqrt_hour=0.0)
        fc = model.issue(47, 2)
        assert fc[0] == truth[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ForecastModel(np.empty(0))
        model = ForecastModel(truth_profile())
        with pytest.raises(ConfigurationError):
            model.issue(0, 0)
        with pytest.raises(ConfigurationError):
            model.rms_error(0)


class TestPredictiveChargeController:
    def _setup(self, net_load, ci, ci_now_value):
        """Microgrid with zero local net balance; controller acts alone."""
        battery = CLCBattery(capacity_wh=100_000.0, initial_soc=0.2)
        mg = Microgrid(
            actors=[Actor("noop", ConstantSignal(0.0))], storage=battery
        )
        grid = GridConnection(ConstantSignal(ci_now_value))
        ctrl = PredictiveChargeController(
            net_load_forecast=ForecastModel(net_load, name="net", error_at_1h=0.0,
                                            error_growth_per_sqrt_hour=0.0),
            ci_forecast=ForecastModel(ci, name="ci", error_at_1h=0.0,
                                      error_growth_per_sqrt_hour=0.0),
            ci_now=ConstantSignal(ci_now_value),
            charge_power_w=20_000.0,
            advantage_g_per_kwh=50.0,
            horizon_hours=12,
            reissue_hours=1,
            grid=grid,
        )
        return mg, grid, ctrl, battery

    def test_buys_ahead_of_dirty_deficit(self):
        # Upcoming deficit at dirty hours (CI 500) while now is clean (100).
        net_load = np.full(240, 5_000.0)
        ci = np.full(240, 500.0)
        mg, grid, ctrl, battery = self._setup(net_load, ci, ci_now_value=100.0)
        soc_before = battery.soc()
        ctrl.on_step(mg, 0.0, HOUR)
        assert battery.soc() > soc_before
        assert grid.import_energy_wh > 0.0

    def test_idle_without_advantage(self):
        # Future no dirtier than now → don't buy.
        net_load = np.full(240, 5_000.0)
        ci = np.full(240, 110.0)
        mg, grid, ctrl, battery = self._setup(net_load, ci, ci_now_value=100.0)
        ctrl.on_step(mg, 0.0, HOUR)
        assert ctrl.grid_charge_energy_wh == 0.0

    def test_idle_without_upcoming_deficit(self):
        net_load = np.full(240, -5_000.0)  # surplus everywhere
        ci = np.full(240, 500.0)
        mg, grid, ctrl, battery = self._setup(net_load, ci, ci_now_value=100.0)
        ctrl.on_step(mg, 0.0, HOUR)
        assert ctrl.grid_charge_energy_wh == 0.0

    def test_stops_at_target_soc(self):
        net_load = np.full(240, 5_000.0)
        ci = np.full(240, 500.0)
        mg, grid, ctrl, battery = self._setup(net_load, ci, ci_now_value=100.0)
        for i in range(60):
            ctrl.on_step(mg, i * HOUR, HOUR)
        assert battery.soc() <= ctrl.target_soc + 0.05

    def test_emissions_accounted(self):
        net_load = np.full(240, 5_000.0)
        ci = np.full(240, 500.0)
        mg, grid, ctrl, battery = self._setup(net_load, ci, ci_now_value=100.0)
        ctrl.on_step(mg, 0.0, HOUR)
        expected_kg = grid.import_energy_wh / 1_000.0 * 100.0 / 1_000.0
        assert grid.emissions_kg == pytest.approx(expected_kg)

    def test_validation(self):
        model = ForecastModel(truth_profile())
        with pytest.raises(ConfigurationError):
            PredictiveChargeController(model, model, ConstantSignal(0.0),
                                       charge_power_w=-1.0)
        with pytest.raises(ConfigurationError):
            PredictiveChargeController(model, model, ConstantSignal(0.0),
                                       charge_power_w=1.0, horizon_hours=0)
