"""Paper-shape assertions: the qualitative results of §4 must hold.

We do not assert the paper's absolute numbers (our substrate is a
synthetic simulator, not the authors' datasets) but the *shape* of every
reported result: who wins, by roughly what factor, where crossovers fall.
Each test cites the claim it checks.
"""

import numpy as np
import pytest

from repro.core.candidates import paper_candidates
from repro.core.composition import MicrogridComposition
from repro.core.fastsim import BatchEvaluator, coverage_grid
from repro.core.projection import crossover_year, project_many
from repro.core.study_runner import run_exhaustive_search


@pytest.fixture(scope="module")
def houston_result(houston):
    return run_exhaustive_search(houston)


@pytest.fixture(scope="module")
def berkeley_result(berkeley):
    return run_exhaustive_search(berkeley)


class TestBaselines:
    """Table 1/2 row 1: grid-only operational emissions."""

    def test_houston_baseline_1554(self, houston_result):
        baseline = next(e for e in houston_result.evaluated if e.composition.is_grid_only)
        assert baseline.operational_tco2_per_day == pytest.approx(15.54, abs=0.15)

    def test_berkeley_baseline_933(self, berkeley_result):
        baseline = next(e for e in berkeley_result.evaluated if e.composition.is_grid_only)
        assert baseline.operational_tco2_per_day == pytest.approx(9.33, abs=0.10)


class TestParetoFrontShape:
    """Figure 2: convex decreasing trade-off, expensive tail."""

    @pytest.mark.parametrize("site", ["houston_result", "berkeley_result"])
    def test_front_is_tradeoff_curve(self, site, request):
        front = request.getfixturevalue(site).front()
        assert len(front) >= 15  # a rich front, not a couple of points
        embodied = np.array([e.embodied_tonnes for e in front])
        operational = np.array([e.operational_tco2_per_day for e in front])
        assert np.all(np.diff(embodied) > 0)
        assert np.all(np.diff(operational) < 1e-12)

    @pytest.mark.parametrize("site", ["houston_result", "berkeley_result"])
    def test_near_zero_needs_heavy_build(self, site, request):
        """§4.1: close-to-zero operational requires a substantial embodied
        investment (the paper's minimum sits at 39 380 tCO2)."""
        front = request.getfixturevalue(site).front()
        tail = front[-1]
        assert tail.operational_tco2_per_day < 0.15
        assert tail.embodied_tonnes > 20_000.0

    def test_full_buildout_is_the_minimum(self, houston_result):
        """§4.1: 'The lowest operational emissions are achieved by the most
        carbon-intensive composition, combining maximum wind and solar
        capacity with full storage.'"""
        best = min(
            houston_result.evaluated,
            key=lambda e: (e.operational_tco2_per_day, e.embodied_tonnes),
        )
        comp = best.composition
        assert comp.wind_mw >= 24.0
        assert comp.solar_mw >= 32.0
        assert comp.battery_mwh >= 45.0


class TestCandidateTables:
    """Tables 1–2: the five-row extraction protocol."""

    def test_houston_rows_structure(self, houston_result):
        rows = paper_candidates(houston_result.evaluated)
        assert len(rows) == 5
        assert rows[0].composition.is_grid_only
        embodied = [r.embodied_tonnes for r in rows]
        operational = [r.operational_tco2_per_day for r in rows]
        assert embodied == sorted(embodied)
        assert operational == sorted(operational, reverse=True)
        # Budget rows respect the 5k/10k/15k caps.
        assert embodied[1] <= 5_000.0
        assert embodied[2] <= 10_000.0
        assert embodied[3] <= 15_000.0

    def test_houston_first_investment_halves_emissions(self, houston_result):
        """Table 1: the sub-5 000 t composition cuts operational emissions
        by more than half vs baseline."""
        rows = paper_candidates(houston_result.evaluated)
        assert rows[1].operational_tco2_per_day < 0.5 * rows[0].operational_tco2_per_day

    def test_berkeley_first_investment_halves_emissions(self, berkeley_result):
        """Table 2: same claim for Berkeley ('already reduces emissions by
        over 50 % relative to the baseline')."""
        rows = paper_candidates(berkeley_result.evaluated)
        assert rows[1].operational_tco2_per_day < 0.55 * rows[0].operational_tco2_per_day

    def test_fifteen_k_budget_reaches_high_coverage(self, houston_result):
        """Table 1 row 4: ~97–99 % on-site coverage under ≈15 000 tCO2."""
        rows = paper_candidates(houston_result.evaluated)
        assert rows[3].metrics.coverage > 0.95

    def test_houston_cheap_decarbonization_is_wind_led(self, houston_result):
        """§4.1: Houston's early Pareto points rely on wind, not solar."""
        front = houston_result.front()
        early = [e for e in front if 2_000.0 < e.embodied_tonnes < 8_000.0]
        assert early
        wind_mw = np.mean([e.composition.wind_mw for e in early])
        solar_mw = np.mean([e.composition.solar_mw for e in early])
        assert wind_mw > solar_mw

    def test_berkeley_uses_more_solar_than_houston(
        self, houston_result, berkeley_result
    ):
        """§4.1: Berkeley's decarbonization is comparatively solar-heavy."""

        def solar_share(result, lo, hi):
            picks = [e for e in result.front() if lo < e.embodied_tonnes < hi]
            total_solar = sum(e.composition.solar_mw for e in picks)
            total_wind = sum(e.composition.wind_mw for e in picks)
            return total_solar / max(total_solar + total_wind, 1e-9)

        assert solar_share(berkeley_result, 4_000, 16_000) > solar_share(
            houston_result, 4_000, 16_000
        )


class TestProjection:
    """Figure 3 / §4.2."""

    def test_houston_baseline_becomes_worst_after_about_7_years(self, houston_result):
        rows = paper_candidates(houston_result.evaluated)
        projections = project_many(rows, horizon_years=20.0)
        year = crossover_year(projections[0], projections[-1])
        assert year is not None and 5.0 <= year <= 9.5

    def test_berkeley_baseline_becomes_worst_after_about_12_years(self, berkeley_result):
        rows = paper_candidates(berkeley_result.evaluated)
        projections = project_many(rows, horizon_years=25.0)
        year = crossover_year(projections[0], projections[-1])
        assert year is not None and 9.0 <= year <= 15.0

    def test_zero_op_config_stays_carbon_heavy(self, houston_result):
        """§4.2: the max build-out remains among the most carbon-intensive
        options even after 20 years."""
        rows = paper_candidates(houston_result.evaluated)
        projections = project_many(rows, horizon_years=20.0)
        final = {p.label: p.total_tco2[-1] for p in projections}
        max_label = rows[-1].composition.label()
        # At 20 years the full build-out must not be the clear winner;
        # mid-size compositions beat it.
        mid_totals = [p.total_tco2[-1] for p in projections[1:-1]]
        assert min(mid_totals) < final[max_label]


class TestCoverageHeatmap:
    """Figure 4: coverage over (solar, wind) without batteries, Houston."""

    def test_monotone_with_diminishing_returns(self, houston):
        solar_levels = [0.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0]
        wind_levels = [0, 2, 4, 6, 8, 10]
        grid = coverage_grid(houston, solar_levels, wind_levels)
        # Monotone in both axes.
        assert np.all(np.diff(grid, axis=0) >= -1e-9)
        assert np.all(np.diff(grid, axis=1) >= -1e-9)
        # Diminishing returns along wind: first turbines buy more than last.
        first_step = grid[0, 1] - grid[0, 0]
        last_step = grid[0, -1] - grid[0, -2]
        assert first_step > 2.0 * last_step

    def test_never_full_coverage_without_storage(self, houston):
        grid = coverage_grid(houston, [40_000.0], [10])
        assert grid[0, 0] < 0.95  # storage-free ceiling


class TestBatteryCycles:
    """Tables: bigger batteries cycle less (EFC ordering)."""

    def test_cycles_decrease_with_capacity(self, houston):
        be = BatchEvaluator(houston)
        small = be.evaluate_one(MicrogridComposition.from_mw(12.0, 12.0, 7.5))
        large = be.evaluate_one(MicrogridComposition.from_mw(12.0, 12.0, 60.0))
        assert small.metrics.battery_cycles > large.metrics.battery_cycles

    def test_cycles_order_of_magnitude(self, houston):
        """Paper reports 41–206 EFC/yr across candidates."""
        be = BatchEvaluator(houston)
        e = be.evaluate_one(MicrogridComposition.from_mw(12.0, 0.0, 7.5))
        assert 30.0 < e.metrics.battery_cycles < 400.0
