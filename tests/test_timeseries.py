"""TimeSeries container behaviour (repro.timeseries)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DataError
from repro.timeseries import HourOfYearIndex, TimeSeries, hourly_times_s


def make(values, step=3600.0, start=0.0):
    return TimeSeries(np.asarray(values, dtype=float), step_s=step, start_s=start, name="t")


class TestConstruction:
    def test_values_coerced_to_float64_contiguous(self):
        ts = make([1, 2, 3])
        assert ts.values.dtype == np.float64
        assert ts.values.flags["C_CONTIGUOUS"]

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            make([])

    def test_rejects_2d(self):
        with pytest.raises(DataError):
            TimeSeries(np.zeros((2, 2)))

    def test_rejects_nonpositive_step(self):
        with pytest.raises(DataError):
            make([1.0], step=0.0)

    def test_span_properties(self):
        ts = make([1, 2, 3, 4], step=1800.0, start=100.0)
        assert ts.end_s == pytest.approx(100.0 + 4 * 1800.0)
        assert ts.duration_s == pytest.approx(4 * 1800.0)
        assert len(ts) == 4


class TestLookup:
    def test_at_left_labelled(self):
        ts = make([10.0, 20.0, 30.0])
        assert ts.at(0.0) == 10.0
        assert ts.at(3599.9) == 10.0
        assert ts.at(3600.0) == 20.0

    def test_at_out_of_range_raises(self):
        ts = make([1.0, 2.0])
        with pytest.raises(DataError):
            ts.at(-0.1)
        with pytest.raises(DataError):
            ts.at(2 * 3600.0)

    def test_interp_midpoint(self):
        ts = make([0.0, 10.0])
        # centers at 1800 and 5400; midpoint 3600 → 5.0
        assert ts.interp(3600.0) == pytest.approx(5.0)

    def test_times_s(self):
        ts = make([1, 2, 3], step=60.0, start=5.0)
        assert np.allclose(ts.times_s, [5.0, 65.0, 125.0])


class TestBulkOps:
    def test_total_energy_hourly(self):
        # 1 kW for 3 hours = 3 kWh = 3000 Wh.
        ts = make([1000.0, 1000.0, 1000.0])
        assert ts.total_energy_wh() == pytest.approx(3000.0)

    def test_total_energy_subhourly(self):
        # 1 kW in 15-min samples: 4 samples = 1 kWh.
        ts = make([1000.0] * 4, step=900.0)
        assert ts.total_energy_wh() == pytest.approx(1000.0)

    def test_downsample_preserves_energy(self):
        ts = make([1.0, 3.0, 5.0, 7.0], step=900.0)
        coarse = ts.resample(1800.0)
        assert coarse.total_energy_wh() == pytest.approx(ts.total_energy_wh())
        assert np.allclose(coarse.values, [2.0, 6.0])

    def test_upsample_repeats(self):
        ts = make([2.0, 4.0])
        fine = ts.resample(1800.0)
        assert np.allclose(fine.values, [2.0, 2.0, 4.0, 4.0])
        assert fine.total_energy_wh() == pytest.approx(ts.total_energy_wh())

    def test_resample_same_step_copies(self):
        ts = make([1.0, 2.0])
        same = ts.resample(3600.0)
        same.values[0] = 99.0
        assert ts.values[0] == 1.0

    def test_resample_non_integer_ratio_raises(self):
        ts = make([1.0, 2.0])
        with pytest.raises(DataError):
            ts.resample(2500.0)

    def test_slice(self):
        ts = make([0.0, 1.0, 2.0, 3.0])
        sub = ts.slice(3600.0, 3 * 3600.0)
        assert np.allclose(sub.values, [1.0, 2.0])
        assert sub.start_s == pytest.approx(3600.0)

    def test_map_and_scale(self):
        ts = make([1.0, -2.0])
        assert np.allclose(ts.map(np.abs).values, [1.0, 2.0])
        assert np.allclose(ts.scale(3.0).values, [3.0, -6.0])


class TestArithmetic:
    def test_add_aligned(self):
        a, b = make([1.0, 2.0]), make([10.0, 20.0])
        assert np.allclose((a + b).values, [11.0, 22.0])

    def test_sub_aligned(self):
        a, b = make([5.0, 5.0]), make([2.0, 3.0])
        assert np.allclose((a - b).values, [3.0, 2.0])

    def test_misaligned_raises(self):
        a = make([1.0, 2.0])
        b = make([1.0, 2.0], start=3600.0)
        with pytest.raises(DataError):
            _ = a + b


class TestHourOfYearIndex:
    def test_wraps_across_years(self):
        idx = HourOfYearIndex()
        t = (8760 + 5) * 3600.0
        assert idx.hour_of_year(t) == pytest.approx(5.0)

    def test_day_of_year_starts_at_one(self):
        idx = HourOfYearIndex()
        assert idx.day_of_year(0.0) == pytest.approx(1.0)
        assert idx.day_of_year(23 * 3600.0) == pytest.approx(1.0)
        assert idx.day_of_year(24 * 3600.0) == pytest.approx(2.0)

    def test_hour_of_day(self):
        idx = HourOfYearIndex()
        assert idx.hour_of_day(25 * 3600.0) == pytest.approx(1.0)


class TestHourlyTimes:
    def test_shape_and_step(self):
        t = hourly_times_s(48)
        assert t.shape == (48,)
        assert np.allclose(np.diff(t), 3600.0)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=4, max_size=64),
)
def test_property_downsample_energy_conserved(values):
    """Downsampling by 2 preserves integrated energy for any series."""
    n = len(values) - len(values) % 2
    if n < 2:
        return
    ts = make(values[:n], step=900.0)
    coarse = ts.resample(1800.0)
    assert coarse.total_energy_wh() == pytest.approx(ts.total_energy_wh(), rel=1e-9, abs=1e-6)


@given(st.floats(min_value=0.0, max_value=364.999), st.integers(min_value=0, max_value=5))
def test_property_piecewise_constant_lookup(day_frac, year):
    """at() always returns the sample covering the queried instant."""
    values = np.arange(365.0)
    ts = TimeSeries(values, step_s=86_400.0)
    t = day_frac * 86_400.0
    assert ts.at(t) == values[int(day_frac)]
