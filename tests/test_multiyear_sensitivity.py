"""Multi-year robustness and sensitivity analyses (library extensions)."""

import numpy as np
import pytest

from repro.core.composition import MicrogridComposition
from repro.core.fastsim import BatchEvaluator
from repro.core.multiyear import (
    MultiYearOutcome,
    evaluate_across_years,
    robust_ranking,
)
from repro.core.sensitivity import (
    best_under_budget_stability,
    crossover_year_analytic,
    scale_operational,
    tornado,
)
from repro.core.study_runner import run_exhaustive_search
from repro.core.parameterspace import ParameterSpace
from repro.exceptions import ConfigurationError

COMPS = [
    MicrogridComposition(0, 0.0, 0),
    MicrogridComposition.from_mw(9.0, 8.0, 22.5),
    MicrogridComposition.from_mw(30.0, 40.0, 60.0),
]


@pytest.fixture(scope="module")
def outcomes():
    # Short years keep the ensemble cheap; 3 years × 3 compositions.
    return evaluate_across_years(
        "houston", COMPS, year_labels=(2022, 2023, 2024), n_hours=24 * 60
    )


class TestMultiYear:
    def test_shapes(self, outcomes):
        assert len(outcomes) == len(COMPS)
        for o in outcomes:
            assert o.operational_tco2_day_by_year.shape == (3,)
            assert o.coverage_by_year.shape == (3,)

    def test_interannual_variability_exists(self, outcomes):
        """Different weather years must produce different outcomes for a
        renewable-backed composition (but not for the grid-only one)."""
        baseline, mid, _ = outcomes
        assert baseline.coverage_by_year.std() == 0.0
        assert mid.operational_tco2_day_by_year.std() > 0.0

    def test_statistics_consistent(self, outcomes):
        o = outcomes[1]
        assert o.operational_worst >= o.operational_mean >= 0.0
        assert 0.0 <= o.coverage_worst <= o.coverage_mean <= 1.0

    def test_cvar_between_mean_and_worst(self, outcomes):
        o = outcomes[1]
        cvar = o.cvar_operational(alpha=0.34)
        assert o.operational_mean <= cvar <= o.operational_worst + 1e-12

    def test_cvar_alpha_one_is_mean(self, outcomes):
        o = outcomes[1]
        assert o.cvar_operational(alpha=1.0) == pytest.approx(o.operational_mean)

    def test_robust_ranking_order(self, outcomes):
        ranked = robust_ranking(outcomes)
        scores = [o.cvar_operational() for o in ranked]
        assert scores == sorted(scores)
        # The max build-out dominates operationally in every year.
        assert ranked[0].composition == COMPS[2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            evaluate_across_years("houston", COMPS, year_labels=())
        o = MultiYearOutcome(
            composition=COMPS[0],
            embodied_tonnes=0.0,
            operational_tco2_day_by_year=np.array([1.0]),
            coverage_by_year=np.array([0.0]),
        )
        with pytest.raises(ConfigurationError):
            o.cvar_operational(alpha=0.0)

    def test_empty_composition_list(self):
        assert evaluate_across_years("houston", [], year_labels=(2024,)) == []


@pytest.fixture(scope="module")
def evaluated_pair(houston):
    be = BatchEvaluator(houston)
    baseline = be.evaluate_one(COMPS[0])
    buildout = be.evaluate_one(COMPS[2])
    return baseline, buildout


class TestSensitivity:
    def test_scale_operational_linear(self, evaluated_pair):
        baseline, _ = evaluated_pair
        assert scale_operational(baseline, 2.0) == pytest.approx(
            2.0 * baseline.operational_tco2_per_day
        )

    def test_crossover_analytic_matches_projection(self, evaluated_pair):
        """The closed form must agree with the numerical projection."""
        from repro.core.projection import crossover_year, project_many

        baseline, buildout = evaluated_pair
        analytic = crossover_year_analytic(baseline, buildout)
        projections = project_many([baseline, buildout], horizon_years=25.0,
                                   samples_per_year=12)
        numeric = crossover_year(projections[0], projections[1])
        assert analytic == pytest.approx(numeric, abs=0.2)

    def test_cleaner_grid_delays_crossover(self, evaluated_pair):
        """If the grid decarbonizes (CI × 0.5), buying hardware pays back
        later — a central caveat for long-term planning."""
        baseline, buildout = evaluated_pair
        nominal = crossover_year_analytic(baseline, buildout)
        clean = crossover_year_analytic(baseline, buildout, ci_multiplier=0.5)
        assert clean > nominal * 1.8

    def test_cheaper_hardware_advances_crossover(self, evaluated_pair):
        baseline, buildout = evaluated_pair
        nominal = crossover_year_analytic(baseline, buildout)
        cheap = crossover_year_analytic(baseline, buildout, embodied_multiplier=0.5)
        assert cheap == pytest.approx(0.5 * nominal, rel=1e-9)

    def test_no_crossover_when_buildout_not_better(self, evaluated_pair):
        baseline, _ = evaluated_pair
        assert crossover_year_analytic(baseline, baseline) is None

    def test_tornado_ranking(self, evaluated_pair):
        baseline, buildout = evaluated_pair
        results = tornado(baseline, buildout)
        assert {r.factor for r in results} == {"carbon_intensity", "embodied_carbon"}
        swings = [r.swing for r in results]
        assert swings == sorted(swings, reverse=True)
        assert all(r.swing > 0 for r in results)

    def test_best_under_budget_stability(self, houston_month):
        space = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=3)
        evaluated = BatchEvaluator(houston_month).evaluate(space.all_compositions())
        picks = best_under_budget_stability(evaluated, budget_tco2=5_000.0)
        assert picks  # at least the nominal multiplier produced a pick
        # Rising embodied multipliers can only shrink the affordable set,
        # so the picked composition's nominal embodied cost is non-increasing.
        from repro.core.embodied import embodied_carbon_tonnes

        costs = [embodied_carbon_tonnes(picks[m]) for m in sorted(picks)]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_validation(self, evaluated_pair):
        baseline, buildout = evaluated_pair
        with pytest.raises(ConfigurationError):
            crossover_year_analytic(baseline, buildout, ci_multiplier=0.0)
        with pytest.raises(ConfigurationError):
            scale_operational(baseline, -1.0)
        with pytest.raises(ConfigurationError):
            best_under_budget_stability([baseline], budget_tco2=0.0)
