"""Ask/tell sampler protocol (DESIGN.md §10).

Every in-tree sampler speaks two protocols over the same RNG draws:
define-by-run ``sample()`` (one parameter at a time, driven by the
objective) and ask/tell ``ask()``/``tell()`` (a complete candidate
planned up front, for the streaming drivers).  The contract: for a fixed
(seed, trial number, completed history) both protocols produce the
*identical* params — that equivalence is what lets the pipelined
dispatcher interchange with the define-by-run loop bit-for-bit.
"""

import warnings

import pytest

from repro.blackbox import (
    GridSampler,
    NSGA2Sampler,
    RandomSampler,
    ScalarizationSampler,
    Study,
    TPESampler,
    TrialState,
)
from repro.blackbox.distributions import (
    CategoricalDistribution,
    FloatDistribution,
    IntDistribution,
)
from repro.blackbox.parallel import materialize_params
from repro.blackbox.samplers.base import Sampler
from repro.exceptions import OptimizationError

SPACE = {
    "x": FloatDistribution(-2.0, 2.0),
    "k": IntDistribution(0, 5),
    "mode": CategoricalDistribution(("a", "b", "c")),
}

GRID_SPACE = {"x": [-1.0, 0.0, 1.0], "k": [0, 2, 4], "mode": ["a", "b"]}

_MODE_COST = {"a": 0.0, "b": 0.5, "c": 1.0}


def _values(params) -> tuple[float, float]:
    base = params["x"] ** 2 + params["k"] + _MODE_COST[params["mode"]]
    return (base, (params["x"] - 1.0) ** 2 + _MODE_COST[params["mode"]])


def _define_by_run_for(n_objectives: int):
    def objective(trial):
        params = {
            "x": trial.suggest_float("x", -2.0, 2.0),
            "k": trial.suggest_int("k", 0, 5),
            "mode": trial.suggest_categorical("mode", ("a", "b", "c")),
        }
        vals = _values(params)
        return vals[0] if n_objectives == 1 else vals

    return objective


def _grid_define_by_run(trial):
    params = {
        "x": trial.suggest_float("x", -2.0, 2.0),
        "k": trial.suggest_int("k", 0, 5),
        "mode": trial.suggest_categorical("mode", ("a", "b")),
    }
    return _values(params)


SAMPLERS = {
    "random": lambda: RandomSampler(seed=5),
    "nsga2": lambda: NSGA2Sampler(population_size=6, seed=5),
    "tpe": lambda: TPESampler(n_startup_trials=6, seed=5),
    "scalarization": lambda: ScalarizationSampler(n_startup_trials=6, seed=5),
    "grid": lambda: GridSampler(GRID_SPACE),
}

GRID_DIST_SPACE = {
    "x": FloatDistribution(-2.0, 2.0),
    "k": IntDistribution(0, 5),
    "mode": CategoricalDistribution(("a", "b")),
}


def _study_for(kind: str) -> Study:
    sampler = SAMPLERS[kind]()
    sampler.per_trial_seeding = True
    directions = ["minimize"] if kind == "tpe" else ["minimize", "minimize"]
    return Study(directions=directions, sampler=sampler)


def _run_define_by_run(kind: str, n_trials: int) -> list:
    study = _study_for(kind)
    objective = (
        _grid_define_by_run
        if kind == "grid"
        else _define_by_run_for(len(study.directions))
    )
    study.optimize(objective, n_trials)
    return [dict(t.params) for t in study.trials]


def _run_ask_tell(kind: str, n_trials: int) -> list:
    study = _study_for(kind)
    space = GRID_DIST_SPACE if kind == "grid" else SPACE
    for _ in range(n_trials):
        trial = study.ask()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            params = study.sampler.ask(study, trial.number, space)
        materialize_params(trial, params, space)
        vals = _values(params)
        study.tell(trial, vals[: len(study.directions)])
    return [dict(t.params) for t in study.trials]


class TestAskTellEquivalence:
    @pytest.mark.parametrize("kind", sorted(SAMPLERS))
    def test_ask_matches_define_by_run_bit_for_bit(self, kind):
        """The protocol contract: same seed + history → same params."""
        n = 18  # three NSGA-II generations: startup AND bred trials
        assert _run_ask_tell(kind, n) == _run_define_by_run(kind, n)

    @pytest.mark.parametrize("kind", sorted(SAMPLERS))
    def test_native_ask_emits_no_deprecation_warning(self, kind):
        """In-tree samplers override ask(); the shim's warning never fires."""
        _run_ask_tell(kind, 4)  # simplefilter("error") inside would raise


class _LegacyOnlySampler(Sampler):
    """A sample()-era subclass that never heard of ask/tell."""

    def sample(self, study, trial, name, distribution):
        return distribution.sample(self.rng)


class TestLegacyShim:
    def test_legacy_sampler_still_asks_with_deprecation_warning(self):
        sampler = _LegacyOnlySampler(seed=9)
        study = Study(directions=["minimize"], sampler=sampler)
        with pytest.warns(DeprecationWarning, match="legacy"):
            params = sampler.ask(study, 0, SPACE)
        assert set(params) == set(SPACE)
        for name, dist in SPACE.items():
            assert dist.contains(params[name])

    def test_shim_matches_define_by_run_draws(self):
        """The shim replays the historical loop: same RNG consumption."""
        a = _LegacyOnlySampler(seed=9)
        a.per_trial_seeding = True
        study_a = Study(directions=["minimize"], sampler=a)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            asked = a.ask(study_a, 0, SPACE)

        b = _LegacyOnlySampler(seed=9)
        b.per_trial_seeding = True
        study_b = Study(directions=["minimize"], sampler=b)
        trial = study_b.ask()
        suggested = {
            "x": trial.suggest_float("x", -2.0, 2.0),
            "k": trial.suggest_int("k", 0, 5),
            "mode": trial.suggest_categorical("mode", ("a", "b", "c")),
        }
        assert asked == suggested


class _RecordingSampler(RandomSampler):
    def __init__(self):
        super().__init__(seed=1)
        self.told = []

    def tell(self, study, trial):
        self.told.append((trial.number, trial.state))
        super().tell(study, trial)


class TestTellRouting:
    def test_study_tell_routes_through_sampler_tell(self):
        sampler = _RecordingSampler()
        study = Study(directions=["minimize"], sampler=sampler)
        t0 = study.ask()
        study.tell(t0, 1.0)
        t1 = study.ask()
        study.tell(t1, state=TrialState.PRUNED)
        assert sampler.told == [
            (0, TrialState.COMPLETE),
            (1, TrialState.PRUNED),
        ]


class TestMaterializeValidation:
    def test_missing_parameter_is_an_error(self):
        study = Study(directions=["minimize"], sampler=RandomSampler(seed=1))
        trial = study.ask()
        with pytest.raises(OptimizationError, match="planned no value"):
            materialize_params(trial, {"x": 0.0}, SPACE)

    def test_out_of_domain_value_is_an_error(self):
        study = Study(directions=["minimize"], sampler=RandomSampler(seed=1))
        trial = study.ask()
        bad = {"x": 99.0, "k": 2, "mode": "a"}
        with pytest.raises(OptimizationError, match="out-of-domain"):
            materialize_params(trial, bad, SPACE)
