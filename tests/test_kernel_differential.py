"""Differential oracle for the compiled dispatch engines (DESIGN.md §9).

Every engine in :mod:`repro.core.kernel` must agree with the reference
per-step loop **bit-for-bit** on all eight accumulators of every
(scenario, candidate) cell — not approximately, exactly.  This file is
the property-fuzz harness that enforces it:

* seeded random stacks (load/solar/wind/CI/price series), random
  C/L/C parameter draws (efficiencies, C-rates, taper, tight SoC
  windows, self-discharge), random candidate sets (grouped and
  ungrouped layouts, zero-capacity and saturating batteries), random
  policies of all five kinds with scalar and per-scenario ``(S, 1)``
  thresholds, and sub-hourly step sizes;
* three independent implementations checked against the loop: the
  segment-vectorized engine, the njit cell kernel (its pure-python body
  locally, the compiled version on the numba CI leg), and a scalar
  oracle built from the co-simulation twins (:class:`CLCBattery` + the
  ``cosim_twin`` policies) that shares no code with the batch loop;
* edge regimes called out in the kernel design: zero-capacity
  batteries, saturating charge limits, single-step horizons, and
  all-idle discharge windows;
* the float32 racing fast path, which is *not* bitwise — its epsilon is
  pinned here instead (see DESIGN.md §9 and the racing rung tests).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import kernel
from repro.core.dispatch import (
    ISLANDED_EPS_W,
    CarbonAwareDispatch,
    DefaultDispatch,
    IslandedDispatch,
    ScenarioStack,
    TimeWindowDispatch,
    TouArbitrageDispatch,
    VectorizedPolicy,
    run_dispatch,
    stack_scenarios,
)
from repro.cosim.battery import CLCBattery
from repro.cosim.policy import (
    CarbonAwarePolicy,
    DefaultPolicy,
    IslandedPolicy,
    TimeWindowPolicy,
    TouArbitragePolicy,
)
from repro.exceptions import ConfigurationError
from repro.sam.batterymodels.clc import CLCParameters
from repro.units import SECONDS_PER_HOUR, WH_PER_KWH

FIELDS = (
    "import_wh",
    "export_wh",
    "charge_wh",
    "discharge_wh",
    "unserved_wh",
    "emissions_kg",
    "cost_usd",
    "islanded_steps",
)


def result_rows(res) -> np.ndarray:
    """Stack a DispatchResult's accumulators as an (8, S, N) array."""
    return np.stack([getattr(res, name) for name in FIELDS])


def assert_rows_equal(got: np.ndarray, want: np.ndarray, label: str) -> None:
    for row, name in enumerate(FIELDS):
        np.testing.assert_array_equal(
            got[row], want[row], err_msg=f"{label}: field {name!r} not bit-identical"
        )


# -- random problem generators ----------------------------------------------


def random_stack(rng: np.random.Generator, s: int, t: int, step_s: float) -> ScenarioStack:
    """A synthetic ScenarioStack with MW-scale profiles (no Scenario objects)."""
    return ScenarioStack(
        scenarios=(),
        load_w=rng.uniform(0.0, 2e6, (s, t)),
        solar_per_kw_w=rng.uniform(0.0, 1_000.0, (s, t)),
        wind_per_turbine_w=rng.uniform(0.0, 3e6, (s, t)),
        ci_g_per_kwh=rng.uniform(50.0, 900.0, (s, t)),
        prices_usd_kwh=rng.uniform(0.02, 0.5, (s, t)),
        export_credit_usd_kwh=rng.uniform(0.0, 0.1, (s, 1)),
        step_s=float(step_s),
    )


def random_params(rng: np.random.Generator) -> CLCParameters:
    soc_min = float(rng.uniform(0.0, 0.35))
    soc_max = float(min(soc_min + rng.uniform(0.1, 0.6), 1.0))
    return CLCParameters(
        capacity_wh=1.0,  # placeholder; per-candidate capacities are vectors
        eta_charge=float(rng.uniform(0.7, 1.0)),
        eta_discharge=float(rng.uniform(0.7, 1.0)),
        max_charge_c_rate=float(rng.uniform(0.1, 2.0)),
        max_discharge_c_rate=float(rng.uniform(0.1, 2.0)),
        taper_soc_threshold=float(rng.uniform(soc_min, soc_max)),
        soc_min=soc_min,
        soc_max=soc_max,
        self_discharge_per_hour=float(rng.uniform(0.0, 5e-3)),
    )


def random_candidates(
    rng: np.random.Generator, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(solar_kw, turbine_factor, capacity_wh) with degenerate members mixed in."""
    solar_kw = rng.uniform(0.0, 2_000.0, n)
    turbine_factor = rng.uniform(0.0, 10.0, n)
    capacity_wh = rng.uniform(0.0, 5e7, n)
    capacity_wh[rng.integers(0, n)] = 0.0  # zero-capacity battery
    if n > 1:
        capacity_wh[rng.integers(0, n)] = 100.0  # tiny: limits always saturate
    return solar_kw, turbine_factor, capacity_wh


def random_policies(rng: np.random.Generator, s: int) -> list[VectorizedPolicy]:
    """One instance of each of the five lowerable kinds, random knobs.

    Carbon and TOU policies come in both scalar- and ``(S, 1)``
    array-threshold forms (the per-scenario shape ``make_policy`` builds).
    """
    start = float(rng.uniform(0.0, 23.9))
    end = float(rng.uniform(0.1, 24.0))
    charge_p = float(rng.uniform(0.03, 0.15))
    policies: list[VectorizedPolicy] = [
        DefaultDispatch(),
        IslandedDispatch(),
        TimeWindowDispatch(discharge_start_h=start, discharge_end_h=end),
        CarbonAwareDispatch(ci_discharge_g_per_kwh=float(rng.uniform(100.0, 800.0))),
        CarbonAwareDispatch(ci_discharge_g_per_kwh=rng.uniform(100.0, 800.0, (s, 1))),
        TouArbitrageDispatch(
            charge_price_usd_kwh=charge_p,
            discharge_price_usd_kwh=charge_p + float(rng.uniform(0.05, 0.3)),
        ),
    ]
    cp = rng.uniform(0.03, 0.15, (s, 1))
    policies.append(
        TouArbitrageDispatch(
            charge_price_usd_kwh=cp,
            discharge_price_usd_kwh=cp + rng.uniform(0.05, 0.3, (s, 1)),
        )
    )
    return policies


# -- the independent implementations ----------------------------------------


def njit_fallback(stack, solar_kw, turbine_factor, capacity_wh, params, policy, initial_soc=0.5):
    """Run the njit cell kernel's pure-python body (no numba needed)."""
    table = kernel.lower_policy(policy, stack)
    assert table is not None, f"{type(policy).__name__} failed to lower"
    s, n = stack.n_scenarios, int(np.asarray(solar_kw).size)
    cap = np.asarray(capacity_wh, dtype=np.float64)
    soc0 = float(np.clip(initial_soc, params.soc_min, params.soc_max))
    energy0 = np.concatenate([cap * soc0, cap * params.soc_min])
    dt_h = stack.step_s / SECONDS_PER_HOUR
    out = np.empty((8, s, n))
    kernel._njit_cell_loop(
        np.ascontiguousarray(stack.solar_per_kw_w.T),
        np.ascontiguousarray(stack.wind_per_turbine_w.T),
        np.ascontiguousarray(stack.load_w.T),
        np.ascontiguousarray(stack.ci_g_per_kwh.T),
        np.ascontiguousarray(stack.prices_usd_kwh.T),
        np.ascontiguousarray(stack.export_credit_usd_kwh[:, 0]),
        np.asarray(solar_kw, dtype=np.float64),
        np.asarray(turbine_factor, dtype=np.float64),
        cap,
        energy0,
        table,
        dt_h,
        params.eta_charge,
        params.eta_discharge,
        params.max_charge_c_rate,
        params.max_discharge_c_rate,
        params.taper_soc_threshold,
        params.soc_max,
        1.0 - params.self_discharge_per_hour * dt_h,
        bool(policy.islanded),
        out,
    )
    return out


def _scalar_twin(policy: VectorizedPolicy, stack: ScenarioStack, s: int):
    """Build the scalar co-simulation policy for scenario row ``s``.

    Mirrors ``cosim_twin`` but reads the signal series straight off the
    stack rows, so it works for synthetic stacks with no Scenario objects.
    """

    def row(x):
        return float(np.asarray(x).reshape(-1)[s]) if np.ndim(x) > 0 else float(x)

    if type(policy) is DefaultDispatch:
        return DefaultPolicy()
    if type(policy) is IslandedDispatch:
        return IslandedPolicy()
    if type(policy) is TimeWindowDispatch:
        return TimeWindowPolicy(policy.discharge_start_h, policy.discharge_end_h)
    if type(policy) is CarbonAwareDispatch:
        return CarbonAwarePolicy(
            ci_g_per_kwh=stack.ci_g_per_kwh[s],
            step_s=stack.step_s,
            ci_discharge_g_per_kwh=row(policy.ci_discharge_g_per_kwh),
        )
    if type(policy) is TouArbitrageDispatch:
        return TouArbitragePolicy(
            prices_usd_kwh=stack.prices_usd_kwh[s],
            step_s=stack.step_s,
            charge_price_usd_kwh=row(policy.charge_price_usd_kwh),
            discharge_price_usd_kwh=row(policy.discharge_price_usd_kwh),
        )
    raise AssertionError(f"no scalar twin for {type(policy).__name__}")


def scalar_oracle(stack, solar_kw, turbine_factor, capacity_wh, params, policy, initial_soc=0.5):
    """Cell-by-cell scalar simulation through CLCBattery + the cosim twins.

    Shares *no* code with the vectorized loop: battery physics go through
    the scalar ``clc_step`` wrapper, decisions through the co-simulation
    policy objects.  Accumulation mirrors the loop's epilogue expressions
    (same operations in the same order), so agreement is bit-for-bit.
    """
    s, t_steps = stack.n_scenarios, stack.n_steps
    n = int(np.asarray(solar_kw).size)
    dt_s = stack.step_s
    dt_h = dt_s / SECONDS_PER_HOUR
    eps_wh = ISLANDED_EPS_W * dt_h
    soc0 = float(np.clip(initial_soc, params.soc_min, params.soc_max))
    out = np.zeros((8, s, n))
    for si in range(s):
        sol = stack.solar_per_kw_w[si]
        wind = stack.wind_per_turbine_w[si]
        load = stack.load_w[si]
        ci = stack.ci_g_per_kwh[si]
        price = stack.prices_usd_kwh[si]
        credit = float(stack.export_credit_usd_kwh[si, 0])
        for ni in range(n):
            kw = float(np.asarray(solar_kw)[ni])
            tb = float(np.asarray(turbine_factor)[ni])
            cap = float(np.asarray(capacity_wh)[ni])
            battery = CLCBattery(
                cap,
                initial_soc=soc0,
                params=dataclasses.replace(params, capacity_wh=cap),
            )
            twin = _scalar_twin(policy, stack, si)
            acc = out[:, si, ni]
            for t in range(t_steps):
                net = sol[t] * kw + wind[t] * tb - load[t]
                d = twin.dispatch(net, battery, t * dt_s, dt_s)
                imp_t = d.grid_import_w * dt_h
                exp_t = d.grid_export_w * dt_h
                uns_t = d.unserved_w * dt_h
                acc[0] += imp_t
                acc[1] += exp_t
                acc[2] += d.storage_charge_w * dt_h
                acc[3] += d.storage_discharge_w * dt_h
                acc[4] += uns_t
                acc[5] += imp_t / WH_PER_KWH * ci[t] / 1_000.0
                acc[6] += imp_t / WH_PER_KWH * price[t] - exp_t / WH_PER_KWH * credit
                acc[7] += (imp_t <= eps_wh) & (uns_t <= eps_wh)
    return out


def run_all_engines(stack, solar_kw, turbine_factor, capacity_wh, params, policy):
    """Reference loop plus every compiled engine, as (8, S, N) stacks."""
    loop = result_rows(
        run_dispatch(
            stack, solar_kw, turbine_factor, capacity_wh, params, policy=policy, engine="loop"
        )
    )
    segments = result_rows(
        kernel.run_compiled(
            stack, solar_kw, turbine_factor, capacity_wh, params, policy=policy, engine="segments"
        )
    )
    njit_py = njit_fallback(stack, solar_kw, turbine_factor, capacity_wh, params, policy)
    out = {"segments": segments, "njit-python": njit_py}
    if kernel.HAS_NUMBA:
        out["njit"] = result_rows(
            kernel.run_compiled(
                stack, solar_kw, turbine_factor, capacity_wh, params, policy=policy, engine="njit"
            )
        )
    return loop, out


# -- property fuzz -----------------------------------------------------------


class TestPropertyFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_engines_bitwise_equal_on_random_problems(self, seed):
        """loop == segments == njit kernel, per cell, on random draws."""
        rng = np.random.default_rng(1_000 + seed)
        s = int(rng.integers(1, 4))
        t = int(rng.choice([1, 7, 25, 49]))
        step_s = float(rng.choice([900.0, 1_800.0, 3_600.0]))
        n = int(rng.choice([1, 5, 17]))
        stack = random_stack(rng, s, t, step_s)
        params = random_params(rng)
        cands = random_candidates(rng, n)
        for policy in random_policies(rng, s):
            loop, engines = run_all_engines(stack, *cands, params, policy)
            for name, rows in engines.items():
                assert_rows_equal(
                    rows, loop, f"seed={seed} {type(policy).__name__} {name}"
                )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_engines_match_scalar_cosim_oracle(self, seed):
        """Per-cell scalar co-simulation (CLCBattery + policy twins)
        reproduces the batch loop bit-for-bit — and therefore every
        compiled engine too (transitively, via the fuzz test above)."""
        rng = np.random.default_rng(7_000 + seed)
        stack = random_stack(rng, 2, 25, float(rng.choice([1_800.0, 3_600.0])))
        params = random_params(rng)
        cands = random_candidates(rng, 4)
        for policy in random_policies(rng, 2):
            loop = result_rows(
                run_dispatch(stack, *cands, params, policy=policy, engine="loop")
            )
            oracle = scalar_oracle(stack, *cands, params, policy)
            assert_rows_equal(loop, oracle, f"seed={seed} {type(policy).__name__} oracle")

    def test_grouped_candidate_layout(self):
        """The paper-style repeated-(solar, wind) layout exercises the
        segments engine's grouped prologue; results must not change."""
        rng = np.random.default_rng(42)
        stack = random_stack(rng, 2, 49, 3_600.0)
        params = random_params(rng)
        g, pairs = 9, 4
        solar_kw = np.repeat(rng.uniform(0.0, 2_000.0, pairs), g)
        turbine = np.repeat(rng.uniform(0.0, 10.0, pairs), g)
        cap = rng.uniform(0.0, 5e7, pairs * g)
        cap[0] = 0.0
        for policy in random_policies(rng, 2):
            loop, engines = run_all_engines(stack, solar_kw, turbine, cap, params, policy)
            for name, rows in engines.items():
                assert_rows_equal(rows, loop, f"grouped {type(policy).__name__} {name}")


class TestEdgeRegimes:
    def _check(self, stack, solar_kw, turbine, cap, params, policy, label):
        loop, engines = run_all_engines(stack, solar_kw, turbine, cap, params, policy)
        for name, rows in engines.items():
            assert_rows_equal(rows, loop, f"{label} {name}")
        oracle = scalar_oracle(stack, solar_kw, turbine, cap, params, policy)
        assert_rows_equal(loop, oracle, f"{label} oracle")

    def test_zero_capacity_battery(self):
        rng = np.random.default_rng(11)
        stack = random_stack(rng, 2, 25, 3_600.0)
        cands = (np.array([500.0, 0.0]), np.array([2.0, 1.0]), np.zeros(2))
        for policy in random_policies(rng, 2):
            self._check(stack, *cands, random_params(rng), policy, "zero-cap")

    def test_saturating_charge_limits(self):
        """Tiny battery against MW-scale net: every limit binds every step."""
        rng = np.random.default_rng(12)
        stack = random_stack(rng, 2, 25, 3_600.0)
        cands = (
            np.array([5_000.0, 5_000.0, 0.0]),
            np.array([8.0, 0.0, 8.0]),
            np.array([100.0, 50.0, 10.0]),
        )
        params = CLCParameters(capacity_wh=1.0, max_charge_c_rate=0.2, max_discharge_c_rate=0.2)
        for policy in random_policies(rng, 2):
            self._check(stack, *cands, params, policy, "saturating")

    def test_single_step_horizon(self):
        rng = np.random.default_rng(13)
        stack = random_stack(rng, 3, 1, 3_600.0)
        cands = random_candidates(rng, 5)
        for policy in random_policies(rng, 3):
            self._check(stack, *cands, random_params(rng), policy, "single-step")

    def test_all_idle_discharge_window(self):
        """A window no hourly step ever lands in: charge-only everywhere."""
        rng = np.random.default_rng(14)
        stack = random_stack(rng, 2, 49, 3_600.0)
        policy = TimeWindowDispatch(discharge_start_h=23.5, discharge_end_h=23.75)
        table = kernel.lower_policy(policy, stack)
        assert np.all(table == kernel.MODE_CHARGE_ONLY)
        self._check(stack, *random_candidates(rng, 5), random_params(rng), policy, "all-idle")


# -- engine selection semantics ----------------------------------------------


class _CustomPolicy(VectorizedPolicy):
    def dispatch_arrays(self, net_w, soc, prices, ci, t_s, dt_s):
        return net_w * 0.5


class TestEngineResolution:
    def test_auto_picks_compiled_engine_for_standard_policies(self):
        expected = "njit" if kernel.HAS_NUMBA else "segments"
        assert kernel.resolve_engine("auto", DefaultDispatch()) == expected
        assert kernel.resolve_engine("auto", None) == expected

    def test_auto_falls_back_to_loop_for_tracing(self):
        assert kernel.resolve_engine("auto", DefaultDispatch(), tracing=True) == "loop"

    def test_auto_falls_back_to_loop_for_custom_policy(self):
        assert kernel.resolve_engine("auto", _CustomPolicy()) == "loop"

    def test_explicit_engine_refuses_tracing(self):
        with pytest.raises(ConfigurationError):
            kernel.resolve_engine("segments", DefaultDispatch(), tracing=True)

    def test_explicit_engine_refuses_unlowerable_policy(self):
        with pytest.raises(ConfigurationError):
            kernel.resolve_engine("segments", _CustomPolicy())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            kernel.resolve_engine("turbo", DefaultDispatch())

    @pytest.mark.skipif(kernel.HAS_NUMBA, reason="numba is installed here")
    def test_explicit_njit_without_numba_refuses(self):
        with pytest.raises(ConfigurationError, match="numba"):
            kernel.resolve_engine("njit", DefaultDispatch())

    def test_auto_never_changes_results_vs_loop(self, houston_month, berkeley_month):
        """Tier-1 guard: the default engine is bit-for-bit the loop."""
        stack = stack_scenarios([houston_month, berkeley_month])
        solar_kw = np.array([0.0, 9_000.0, 24_000.0])
        turbine = np.array([0.0, 4.0, 12.0])
        cap = np.array([0.0, 2.25e7, 6.0e7])
        params = CLCParameters(capacity_wh=1.0)
        rng = np.random.default_rng(21)
        for policy in random_policies(rng, 2):
            auto = result_rows(
                run_dispatch(stack, solar_kw, turbine, cap, params, policy=policy)
            )
            loop = result_rows(
                run_dispatch(
                    stack, solar_kw, turbine, cap, params, policy=policy, engine="loop"
                )
            )
            assert_rows_equal(auto, loop, f"auto-vs-loop {type(policy).__name__}")


@pytest.mark.skipif(
    not kernel.HAS_NUMBA,
    reason="numba not installed — the compiled njit engine leg runs on the CI numba job",
)
class TestNjitCompiled:
    def test_compiled_njit_bitwise_equal_to_loop(self, houston_month, berkeley_month):
        stack = stack_scenarios([houston_month, berkeley_month])
        rng = np.random.default_rng(31)
        cands = random_candidates(rng, 9)
        params = CLCParameters(capacity_wh=1.0)
        for policy in random_policies(rng, 2):
            loop = result_rows(
                run_dispatch(stack, *cands, params, policy=policy, engine="loop")
            )
            njit = result_rows(
                run_dispatch(stack, *cands, params, policy=policy, engine="njit")
            )
            assert_rows_equal(njit, loop, f"njit {type(policy).__name__}")


# -- float32 racing fast path -------------------------------------------------

#: documented accuracy of the float32 segments variant on full aggregates
#: (DESIGN.md §9); racing rungs only need bounds, not bitwise equality.
FLOAT32_REL_EPS = 1e-4


class TestFloat32Rungs:
    def test_float32_aggregates_within_epsilon_on_both_sites(
        self, houston_month, berkeley_month
    ):
        params = CLCParameters(capacity_wh=1.0)
        solar_kw = np.array([0.0, 9_000.0, 24_000.0])
        turbine = np.array([0.0, 4.0, 12.0])
        cap = np.array([0.0, 2.25e7, 6.0e7])
        for scenario in (houston_month, berkeley_month):
            stack = stack_scenarios([scenario])
            f64 = result_rows(
                kernel.run_dispatch_segments(stack, solar_kw, turbine, cap, params)
            )
            f32 = result_rows(
                kernel.run_dispatch_segments(
                    stack, solar_kw, turbine, cap, params, dtype=np.float32
                )
            )
            scale = np.maximum(np.abs(f64), 1.0)
            rel = np.abs(f32 - f64) / scale
            assert rel.max() < FLOAT32_REL_EPS, (scenario.name, rel.max())

    def test_float32_output_is_float64_promoted(self, houston_month):
        stack = stack_scenarios([houston_month])
        res = kernel.run_dispatch_segments(
            stack,
            np.array([9_000.0]),
            np.array([4.0]),
            np.array([2.25e7]),
            CLCParameters(capacity_wh=1.0),
            dtype=np.float32,
        )
        for name in FIELDS:
            assert getattr(res, name).dtype == np.float64
