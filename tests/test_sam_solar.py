"""Solar model chain: geometry, clear sky, irradiance, temperature,
inverter, losses, PVWatts."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data import BERKELEY, HOUSTON, synthesize_solar_resource
from repro.exceptions import ConfigurationError
from repro.sam.solar.clearsky import clearsky_dhi, haurwitz_ghi, ineichen_dni, relative_airmass
from repro.sam.solar.geometry import (
    declination_deg,
    equation_of_time_minutes,
    extraterrestrial_normal_w_m2,
    solar_position,
    sunrise_sunset_hours,
)
from repro.sam.solar.inverter import InverterModel
from repro.sam.solar.irradiance import erbs_decomposition, poa_irradiance
from repro.sam.solar.losses import DEFAULT_LOSSES, SystemLosses
from repro.sam.solar.pvwatts import PVWattsModel, PVWattsParameters, per_kw_profile
from repro.sam.solar.temperature import cell_temperature_noct, cell_temperature_sapm


def noon_position(lat=37.87, day=172):
    """Solar position at local solar noon on a given day."""
    # local noon in epoch seconds for a site at the timezone meridian
    t = np.array([((day - 1) * 24 + 12) * 3600.0])
    return solar_position(t, lat, -120.0, -8.0)


class TestGeometry:
    def test_declination_range_and_solstices(self):
        days = np.arange(1.0, 366.0)
        decl = declination_deg(days)
        assert decl.max() == pytest.approx(23.45, abs=0.6)
        assert decl.min() == pytest.approx(-23.45, abs=0.6)
        # June solstice around day 172, December around day 355.
        assert abs(int(days[np.argmax(decl)]) - 172) <= 3
        assert abs(int(days[np.argmin(decl)]) - 355) <= 10

    def test_equation_of_time_bounds(self):
        eot = equation_of_time_minutes(np.arange(1.0, 366.0))
        assert eot.max() < 18.0 and eot.min() > -16.0

    def test_extraterrestrial_seasonal(self):
        # Earth is closest to the sun in early January.
        ext = extraterrestrial_normal_w_m2(np.arange(1.0, 366.0))
        assert np.argmax(ext) < 20 or np.argmax(ext) > 350
        assert 1310.0 < ext.min() < ext.max() < 1420.0

    def test_summer_noon_zenith_berkeley(self):
        pos = noon_position(lat=37.87, day=172)
        # zenith ≈ |lat − decl| ≈ 37.87 − 23.4 ≈ 14.4°
        assert pos.zenith_deg[0] == pytest.approx(14.4, abs=1.5)

    def test_noon_azimuth_south(self):
        pos = noon_position(lat=37.87, day=80)
        assert pos.azimuth_deg[0] == pytest.approx(180.0, abs=5.0)

    def test_night_cos_zenith_clipped(self):
        t = np.array([0.0])  # local midnight
        pos = solar_position(t, 37.87, -120.0, -8.0)
        assert pos.cos_zenith[0] == 0.0
        assert pos.zenith_deg[0] > 90.0

    def test_sunrise_sunset_symmetry(self):
        rise, set_ = sunrise_sunset_hours(80.0, 37.87)  # near equinox
        assert rise == pytest.approx(6.0, abs=0.5)
        assert set_ == pytest.approx(18.0, abs=0.5)

    def test_polar_day_and_night(self):
        assert sunrise_sunset_hours(172.0, 80.0) == (0.0, 24.0)
        assert sunrise_sunset_hours(355.0, 80.0) == (12.0, 12.0)


class TestClearSky:
    def test_airmass_vertical(self):
        assert relative_airmass(np.array([0.0]))[0] == pytest.approx(1.0, abs=0.01)

    def test_airmass_monotone(self):
        zen = np.array([0.0, 30.0, 60.0, 80.0, 85.0])
        am = relative_airmass(zen)
        assert np.all(np.diff(am) > 0)

    def test_haurwitz_overhead_sun(self):
        ghi = haurwitz_ghi(np.array([0.0]))[0]
        assert 1000.0 < ghi < 1100.0

    def test_haurwitz_zero_below_horizon(self):
        assert haurwitz_ghi(np.array([95.0]))[0] == 0.0

    def test_ineichen_turbidity_attenuates(self):
        zen = np.array([30.0])
        clean = ineichen_dni(zen, linke_turbidity=2.0)[0]
        hazy = ineichen_dni(zen, linke_turbidity=5.0)[0]
        assert clean > hazy > 0.0

    def test_clearsky_dhi_closure(self):
        zen = np.array([40.0])
        ghi = haurwitz_ghi(zen)
        dni = ineichen_dni(zen)
        dhi = clearsky_dhi(ghi, dni, zen)
        assert dhi[0] >= 0.0


class TestErbs:
    def test_clear_sky_mostly_beam(self):
        zen = np.array([20.0])
        ext = extraterrestrial_normal_w_m2(np.array([172.0]))
        ghi = 0.75 * ext * np.cos(np.radians(zen))
        dni, dhi = erbs_decomposition(ghi, zen, ext)
        assert dhi[0] / ghi[0] < 0.25  # clear → low diffuse fraction
        assert dni[0] > 0.0

    def test_overcast_all_diffuse(self):
        zen = np.array([40.0])
        ext = extraterrestrial_normal_w_m2(np.array([172.0]))
        ghi = 0.10 * ext * np.cos(np.radians(zen))
        dni, dhi = erbs_decomposition(ghi, zen, ext)
        assert dhi[0] / ghi[0] > 0.9

    def test_night_zeros(self):
        dni, dhi = erbs_decomposition(
            np.array([0.0]), np.array([100.0]), np.array([1361.0])
        )
        assert dni[0] == 0.0 and dhi[0] == 0.0


class TestPoa:
    def _clear_day_inputs(self):
        t = np.array([((171) * 24 + 12) * 3600.0])
        pos = solar_position(t, 37.87, -120.0, -8.0)
        ghi = haurwitz_ghi(pos.zenith_deg)
        dni, dhi = erbs_decomposition(ghi, pos.zenith_deg, pos.extraterrestrial_w_m2)
        return pos, ghi, dni, dhi

    def test_components_nonnegative(self):
        pos, ghi, dni, dhi = self._clear_day_inputs()
        poa = poa_irradiance(pos, ghi, dni, dhi, tilt_deg=38.0)
        assert poa.beam[0] >= 0 and poa.sky_diffuse[0] >= 0 and poa.ground_reflected[0] >= 0

    def test_hdkr_exceeds_isotropic_clear_noon(self):
        """Circumsolar enhancement: HDKR ≥ isotropic under beam-rich sky."""
        pos, ghi, dni, dhi = self._clear_day_inputs()
        iso = poa_irradiance(pos, ghi, dni, dhi, tilt_deg=38.0, model="isotropic")
        hdkr = poa_irradiance(pos, ghi, dni, dhi, tilt_deg=38.0, model="hdkr")
        assert hdkr.total[0] >= iso.total[0]

    def test_horizontal_equals_ghi(self):
        """At tilt 0 the POA total must equal GHI (up to model epsilon)."""
        pos, ghi, dni, dhi = self._clear_day_inputs()
        poa = poa_irradiance(pos, ghi, dni, dhi, tilt_deg=0.0, model="isotropic")
        assert poa.total[0] == pytest.approx(ghi[0], rel=0.05)

    def test_invalid_inputs(self):
        pos, ghi, dni, dhi = self._clear_day_inputs()
        with pytest.raises(ConfigurationError):
            poa_irradiance(pos, ghi, dni, dhi, tilt_deg=120.0)
        with pytest.raises(ConfigurationError):
            poa_irradiance(pos, ghi, dni, dhi, tilt_deg=30.0, model="perez99")
        with pytest.raises(ConfigurationError):
            poa_irradiance(pos, ghi, dni, dhi, tilt_deg=30.0, albedo=2.0)


class TestCellTemperature:
    def test_noct_reference_point(self):
        # At NOCT test conditions the model must return NOCT.
        t = cell_temperature_noct(np.array([800.0]), np.array([20.0]), noct_c=45.0)
        assert t[0] == pytest.approx(45.0)

    def test_noct_dark_equals_ambient(self):
        t = cell_temperature_noct(np.array([0.0]), np.array([12.0]))
        assert t[0] == pytest.approx(12.0)

    def test_sapm_wind_cools(self):
        still = cell_temperature_sapm(np.array([800.0]), np.array([20.0]), 0.5)
        breezy = cell_temperature_sapm(np.array([800.0]), np.array([20.0]), 8.0)
        assert breezy[0] < still[0]


class TestInverter:
    def test_clipping_at_nameplate(self):
        inv = InverterModel(ac_rated_w=1000.0)
        ac = inv.ac_power_w(np.array([5000.0]))
        assert ac[0] == pytest.approx(1000.0)

    def test_zero_in_zero_out(self):
        inv = InverterModel(ac_rated_w=1000.0)
        assert inv.ac_power_w(np.array([0.0]))[0] == 0.0

    def test_part_load_less_efficient(self):
        inv = InverterModel(ac_rated_w=1000.0)
        p_dc0 = 1000.0 / 0.96
        full = inv.ac_power_w(np.array([p_dc0 * 0.75]))[0] / (p_dc0 * 0.75)
        trickle = inv.ac_power_w(np.array([p_dc0 * 0.02]))[0] / (p_dc0 * 0.02)
        assert full > trickle

    def test_efficiency_never_above_one(self):
        inv = InverterModel(ac_rated_w=1000.0)
        dc = np.linspace(1.0, 3000.0, 500)
        ac = inv.ac_power_w(dc)
        assert np.all(ac <= dc + 1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InverterModel(ac_rated_w=0.0)
        with pytest.raises(ConfigurationError):
            InverterModel(ac_rated_w=100.0, nominal_efficiency=1.2)


class TestLosses:
    def test_default_total_near_paper_value(self):
        # PVWatts default losses ≈ 12–14 %.
        assert 0.10 < DEFAULT_LOSSES.total_loss_fraction < 0.16

    def test_multiplicative_combination(self):
        losses = SystemLosses(
            soiling=0.5, shading=0.5, snow=0.0, mismatch=0.0, wiring=0.0,
            connections=0.0, light_induced_degradation=0.0, nameplate_rating=0.0,
            age=0.0, availability=0.0,
        )
        assert losses.total_derate == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemLosses(soiling=1.5)


class TestPVWatts:
    @pytest.fixture(scope="class")
    def berkeley_resource(self):
        return synthesize_solar_resource(BERKELEY)

    def test_output_linear_in_capacity(self, berkeley_resource):
        """AC output must scale linearly with nameplate — the property the
        fast batch evaluator depends on."""
        small = PVWattsModel(PVWattsParameters(dc_capacity_kw=1000.0)).run(berkeley_resource)
        large = PVWattsModel(PVWattsParameters(dc_capacity_kw=4000.0)).run(berkeley_resource)
        assert np.allclose(large.ac_power_w, 4.0 * small.ac_power_w, rtol=1e-9)

    def test_per_kw_profile_matches_model(self, berkeley_resource):
        per_kw = per_kw_profile(berkeley_resource)
        direct = PVWattsModel(PVWattsParameters(dc_capacity_kw=1.0)).run(berkeley_resource)
        assert np.allclose(per_kw, direct.ac_power_w)

    def test_capacity_factor_band(self, berkeley_resource):
        res = PVWattsModel(PVWattsParameters(dc_capacity_kw=1000.0)).run(berkeley_resource)
        cf = res.capacity_factor(1000.0)
        assert 0.14 < cf < 0.23  # realistic fixed-tilt California

    def test_sites_ranked(self):
        b = PVWattsModel(PVWattsParameters(dc_capacity_kw=1000.0)).run(
            synthesize_solar_resource(BERKELEY)
        )
        h = PVWattsModel(PVWattsParameters(dc_capacity_kw=1000.0)).run(
            synthesize_solar_resource(HOUSTON)
        )
        assert b.capacity_factor(1000.0) > h.capacity_factor(1000.0)

    def test_zero_capacity_zero_output(self, berkeley_resource):
        res = PVWattsModel(PVWattsParameters(dc_capacity_kw=0.0)).run(berkeley_resource)
        assert np.all(res.ac_power_w == 0.0)

    def test_night_zero(self, berkeley_resource):
        res = PVWattsModel(PVWattsParameters(dc_capacity_kw=1000.0)).run(berkeley_resource)
        assert np.all(res.ac_power_w[0::24] == 0.0)  # local midnight

    def test_temperature_model_choice(self, berkeley_resource):
        noct = PVWattsModel(
            PVWattsParameters(dc_capacity_kw=1000.0, temperature_model="noct")
        ).run(berkeley_resource)
        sapm = PVWattsModel(
            PVWattsParameters(dc_capacity_kw=1000.0, temperature_model="sapm")
        ).run(berkeley_resource)
        # Different models, same order of magnitude.
        assert sapm.annual_energy_kwh == pytest.approx(noct.annual_energy_kwh, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PVWattsParameters(dc_capacity_kw=-1.0)
        with pytest.raises(ConfigurationError):
            PVWattsParameters(dc_capacity_kw=1.0, dc_ac_ratio=0.0)
        with pytest.raises(ConfigurationError):
            PVWattsParameters(dc_capacity_kw=1.0, temperature_model="magic")
        with pytest.raises(ConfigurationError):
            PVWattsParameters(dc_capacity_kw=1.0, gamma_pdc_per_c=0.01)


@given(st.floats(min_value=0.0, max_value=89.0))
def test_property_haurwitz_bounded_by_solar_constant(zenith):
    ghi = haurwitz_ghi(np.array([zenith]))[0]
    assert 0.0 <= ghi <= 1361.0


@given(
    st.floats(min_value=0.0, max_value=1200.0),
    st.floats(min_value=-10.0, max_value=45.0),
)
def test_property_noct_cell_hotter_than_ambient(poa, ambient):
    t = cell_temperature_noct(np.array([poa]), np.array([ambient]))[0]
    assert t >= ambient - 1e-9
