"""Pipelined generation-free dispatch (DESIGN.md §10).

The contract :class:`PipelinedDispatcher` must keep:

* with speculation off, the streamed run is **bit-identical** to
  :class:`ParallelStudyRunner`'s generation-batched run — params,
  values, states, intermediate reports, and rung attrs, racing
  included;
* with speculation on, the trial sequence is a pure function of
  ``(seed, speculation depth)`` — never of worker count or scheduling;
* every trial persists its ask order and parent epoch as system attrs,
  a genuine ``kill -9`` mid-pipeline resumes to the identical front on
  journal *and* SQLite backends, and resuming with a different
  speculation depth / batch size is a hard error;
* the batched runner's per-batch starvation accounting lands in study
  metadata for ``repro study status``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.blackbox import NSGA2Sampler, create_study
from repro.blackbox.distributions import FloatDistribution, IntDistribution
from repro.blackbox.parallel import (
    ParallelStudyRunner,
    PipelinedDispatcher,
    parse_pipeline_spec,
    pipeline_spec_string,
)
from repro.blackbox.study import Study
from repro.blackbox.trial import (
    PARENT_EPOCH_ATTR,
    PIPELINE_ASK_ATTR,
    RACING_RUNG_ATTR,
    TrialState,
)
from repro.confsys.launcher import ThreadLauncher
from repro.core.metrics import aggregate_values
from repro.exceptions import OptimizationError

SPACE = {"x": FloatDistribution(-2.0, 2.0), "k": IntDistribution(0, 5)}

BATCH = 8
N_TRIALS = 24


def sphere(params: dict) -> tuple[float, float]:
    return (params["x"] ** 2 + params["k"], (params["x"] - 1.0) ** 2)


class RacedSphere:
    """Synthetic multi-fidelity objective: five 'scenario members' whose
    per-member vectors differ by a deterministic bump, reduced with the
    sound-bound ``worst`` aggregate (picklable for spawn workers)."""

    n_members = 5
    aggregate = "worst"

    def member_values(self, params, member_indices):
        return [self._member(params, m) for m in member_indices]

    def _member(self, params, m):
        bump = 0.07 * m * (1.0 + params["x"])
        return (params["x"] ** 2 + params["k"] + bump, (params["x"] - 1.0) ** 2 + bump)

    def member_difficulty(self):
        """Higher bump → harder member (for the ``hardest`` rung order)."""
        return [float(m) for m in range(self.n_members)]

    def __call__(self, params):
        vectors = self.member_values(params, range(self.n_members))
        return tuple(
            aggregate_values(column, self.aggregate) for column in zip(*vectors)
        )


def _study(seed: int = 7) -> Study:
    return Study(
        directions=["minimize", "minimize"],
        sampler=NSGA2Sampler(population_size=BATCH, seed=seed),
    )


def _snapshot(study: Study) -> list:
    return [
        (
            t.number,
            dict(t.params),
            t.values,
            t.state,
            dict(t.intermediate),
            t.system_attrs.get(RACING_RUNG_ATTR),
        )
        for t in study.trials
    ]


def _run_generational(objective, racing=None) -> Study:
    study = _study()
    runner = ParallelStudyRunner(
        study, SPACE, launcher=ThreadLauncher(4), batch_size=BATCH
    )
    runner.optimize(objective, n_trials=N_TRIALS, racing=racing)
    return study


def _run_pipelined(
    objective, speculate: int = 0, workers: int = 4, racing=None
) -> "tuple[Study, PipelinedDispatcher]":
    study = _study()
    dispatcher = PipelinedDispatcher(
        study,
        SPACE,
        workers=workers,
        executor="thread",
        speculate=speculate,
        batch_size=BATCH,
    )
    dispatcher.optimize(objective, n_trials=N_TRIALS, racing=racing)
    return study, dispatcher


class TestSpecZeroBitIdentity:
    """speculate=0 → the exact generation-batched run, worker-count free."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_plain_matches_batched_runner(self, workers):
        reference = _snapshot(_run_generational(sphere))
        piped, _ = _run_pipelined(sphere, speculate=0, workers=workers)
        assert _snapshot(piped) == reference

    @pytest.mark.parametrize("workers", [1, 4])
    def test_racing_matches_batched_runner(self, workers):
        """Rung climbs as queue items: same prune decisions, same partial
        reports, same rung attrs, same surviving values."""
        reference = _run_generational(RacedSphere(), racing="rungs=2,full")
        piped, _ = _run_pipelined(
            RacedSphere(), speculate=0, workers=workers, racing="rungs=2,full"
        )
        assert _snapshot(piped) == _snapshot(reference)
        pruned = [t for t in piped.trials if t.state == TrialState.PRUNED]
        assert pruned, "racing never pruned — vacuous equivalence"
        objective = RacedSphere()
        for trial in piped.trials:
            if trial.state == TrialState.COMPLETE:
                assert tuple(objective(dict(trial.params))) == trial.values


class TestSpeculativeDeterminism:
    def test_identical_across_worker_counts(self):
        """The epoch schedule is a pure function of the trial number, so
        1, 2, and 4 workers must breed the identical sequence."""
        runs = {
            w: _run_pipelined(sphere, speculate=4, workers=w)
            for w in (1, 2, 4)
        }
        snapshots = {w: _snapshot(study) for w, (study, _) in runs.items()}
        assert snapshots[1] == snapshots[2] == snapshots[4]
        assert runs[4][1].stats.n_speculative > 0, (
            "no trial was bred speculatively — the determinism claim is vacuous"
        )

    def test_speculative_trials_breed_from_the_previous_generation(self):
        study, dispatcher = _run_pipelined(sphere, speculate=4, workers=4)
        for trial in study.trials:
            attrs = trial.system_attrs
            assert attrs[PIPELINE_ASK_ATTR] == trial.number
            assert attrs[PARENT_EPOCH_ATTR] == dispatcher._epoch(trial.number)
            generation, offset = divmod(trial.number, BATCH)
            if generation >= 1 and offset < 4:
                assert attrs[PARENT_EPOCH_ATTR] == (generation - 1) * BATCH
            else:
                assert attrs[PARENT_EPOCH_ATTR] == generation * BATCH


class TestPipelineSpec:
    def test_round_trip(self):
        assert parse_pipeline_spec(pipeline_spec_string(3)) == 3
        assert parse_pipeline_spec("speculate=0") == 0

    @pytest.mark.parametrize("bad", ["", "speculate=", "speculate=x", "deep=3"])
    def test_malformed_specs_are_errors(self, bad):
        with pytest.raises(OptimizationError):
            parse_pipeline_spec(bad)


def _storage_url(kind: str, tmp_path: Path) -> str:
    if kind == "journal":
        return str(tmp_path / "pipe.jsonl")
    return f"sqlite:///{tmp_path / 'pipe.db'}"


def _pipelined_on_storage(url: str, n_trials: int, load: bool = False) -> Study:
    study = create_study(
        directions=["minimize", "minimize"],
        sampler=NSGA2Sampler(population_size=BATCH, seed=7),
        storage=url,
        study_name="pipe",
        load_if_exists=load,
    )
    PipelinedDispatcher(
        study, SPACE, workers=2, executor="thread", speculate=4, batch_size=BATCH
    ).optimize(sphere, n_trials=n_trials)
    return study


class TestTagPersistence:
    @pytest.mark.parametrize("kind", ["journal", "sqlite"])
    def test_epoch_tags_survive_reload(self, kind, tmp_path):
        url = _storage_url(kind, tmp_path)
        _pipelined_on_storage(url, N_TRIALS)
        reloaded = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=BATCH, seed=7),
            storage=url,
            study_name="pipe",
            load_if_exists=True,
        )
        assert len(reloaded.trials) == N_TRIALS
        assert reloaded.metadata["pipeline"] == "speculate=4"
        assert reloaded.metadata["batch"] == BATCH
        for trial in reloaded.trials:
            generation, offset = divmod(trial.number, BATCH)
            expected = (
                (generation - 1) * BATCH
                if generation >= 1 and offset < 4
                else generation * BATCH
            )
            assert trial.system_attrs[PIPELINE_ASK_ATTR] == trial.number
            assert trial.system_attrs[PARENT_EPOCH_ATTR] == expected

    def test_pipeline_stats_land_in_metadata(self, tmp_path):
        study = _pipelined_on_storage(_storage_url("journal", tmp_path), N_TRIALS)
        stats = study.metadata["pipeline_stats"]
        assert stats["workers"] == 2
        assert stats["n_trials"] == N_TRIALS
        assert 0.0 <= stats["idle"] <= 1.0


class TestResumeValidation:
    def test_different_speculation_depth_is_a_hard_error(self, tmp_path):
        url = _storage_url("journal", tmp_path)
        _pipelined_on_storage(url, N_TRIALS)
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=BATCH, seed=7),
            storage=url,
            study_name="pipe",
            load_if_exists=True,
        )
        dispatcher = PipelinedDispatcher(
            study, SPACE, workers=2, executor="thread", speculate=2, batch_size=BATCH
        )
        with pytest.raises(OptimizationError, match="speculation depth"):
            dispatcher.optimize(sphere, n_trials=N_TRIALS + BATCH)

    def test_different_batch_size_is_a_hard_error(self, tmp_path):
        url = _storage_url("journal", tmp_path)
        _pipelined_on_storage(url, N_TRIALS)
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=BATCH, seed=7),
            storage=url,
            study_name="pipe",
            load_if_exists=True,
        )
        dispatcher = PipelinedDispatcher(
            study, SPACE, workers=2, executor="thread", speculate=4, batch_size=4
        )
        with pytest.raises(OptimizationError, match="batch"):
            dispatcher.optimize(sphere, n_trials=N_TRIALS + BATCH)


KILL_CHILD = textwrap.dedent(
    """
    import os
    import signal
    import sys

    from repro.blackbox import NSGA2Sampler, create_study
    from repro.blackbox.distributions import FloatDistribution, IntDistribution
    from repro.blackbox.parallel import PipelinedDispatcher
    from repro.blackbox.storage import JournalStorage, SQLiteStorage

    kind, path, kill_after = sys.argv[1], sys.argv[2], int(sys.argv[3])
    base = JournalStorage if kind == "journal" else SQLiteStorage

    class KillingStorage(base):
        finishes = 0

        def record_trial_finish(self, study_name, trial):
            super().record_trial_finish(study_name, trial)
            KillingStorage.finishes += 1
            if KillingStorage.finishes >= kill_after:
                os.kill(os.getpid(), signal.SIGKILL)  # the real thing

    SPACE = {"x": FloatDistribution(-2.0, 2.0), "k": IntDistribution(0, 5)}

    def sphere(params):
        return (params["x"] ** 2 + params["k"], (params["x"] - 1.0) ** 2)

    study = create_study(
        directions=["minimize", "minimize"],
        sampler=NSGA2Sampler(population_size=8, seed=7),
        storage=KillingStorage(path),
        study_name="pipe",
    )
    PipelinedDispatcher(
        study, SPACE, workers=2, executor="thread", speculate=4, batch_size=8
    ).optimize(sphere, n_trials=24)
    """
)


class TestKillDashNineMidPipeline:
    """A genuine ``kill -9`` while speculative trials are in flight: the
    store holds a partial generation plus early next-generation trials
    whose tags must pass the resume audit — on both durable backends."""

    @pytest.mark.parametrize("kind", ["journal", "sqlite"])
    def test_sigkill_then_resume_identical_trials(self, kind, tmp_path):
        path = tmp_path / ("pipe.jsonl" if kind == "journal" else "pipe.db")
        script = tmp_path / "child.py"
        script.write_text(KILL_CHILD)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), kind, str(path), "13"],
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        url = str(path) if kind == "journal" else f"sqlite:///{path}"
        resumed = _pipelined_on_storage(url, N_TRIALS, load=True)
        reference = _pipelined_on_storage(
            _storage_url(kind, tmp_path / "ref"), N_TRIALS
        )
        assert _snapshot(resumed) == _snapshot(reference)


class TestStarvationAccounting:
    def test_batched_runner_records_per_batch_timings(self):
        study = _run_generational(sphere)
        timings = study.metadata["batch_timings"]
        assert len(timings) == N_TRIALS // BATCH
        for entry in timings:
            assert set(entry) == {"dispatch", "slowest", "idle"}
            assert entry["dispatch"] >= 0.0
            assert entry["slowest"] <= entry["dispatch"] + 1e-9
            assert 0.0 <= entry["idle"] <= 1.0

    def test_status_helper_summarizes_starvation(self):
        from repro.cli import _starvation_stats

        line = _starvation_stats(
            [
                {"dispatch": 2.0, "slowest": 1.9, "idle": 0.25},
                {"dispatch": 1.0, "slowest": 0.8, "idle": 0.75},
            ]
        )
        assert "2 dispatched" in line
        assert "3.0" in line  # total dispatch seconds
        assert "50" in line  # mean idle %
        assert "75" in line  # worst idle %
