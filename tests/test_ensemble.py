"""Scenario-ensemble subsystem (DESIGN.md §6).

Spec parsing and crossing, per-axis seeding invariants, the shared
unit-profile cache, parallel member builds, stacked-vs-serial
equivalence, and the journaled ensemble study's resume identity.
"""

import numpy as np
import pytest

from repro.blackbox import JournalStorage
from repro.core.composition import MicrogridComposition
from repro.core.ensemble import (
    EnsembleMember,
    EnsembleSpec,
    build_ensemble,
    evaluate_ensemble,
)
from repro.core.fastsim import BatchEvaluator
from repro.core.metrics import COMPARABLE_METRIC_FIELDS
from repro.core.scenario import build_scenario, clear_scenario_cache
from repro.data.locations import get_location
from repro.data.weather_events import WeatherEvent, dunkelflaute_events
from repro.exceptions import ConfigurationError

N_HOURS = 240

COMPS = [
    MicrogridComposition(0, 0.0, 0),
    MicrogridComposition.from_mw(9.0, 8.0, 22.5),
    MicrogridComposition.from_mw(30.0, 40.0, 60.0),
]


class TestEnsembleSpecParsing:
    def test_year_range_inclusive(self):
        spec = EnsembleSpec.parse("years=2020-2023")
        assert spec.years == (2020, 2021, 2022, 2023)

    def test_year_list(self):
        spec = EnsembleSpec.parse("years=2020:2022:2024")
        assert spec.years == (2020, 2022, 2024)

    def test_multi_axis_cross_product(self):
        spec = EnsembleSpec.parse(
            "years=2020-2021,growth=1.0:1.3,carbon=baseline:cleaner,"
            "severity=1.0:1.5,tariff=default:flat",
            sites=("berkeley", "houston"),
        )
        assert len(spec) == 2 * 2 * 2 * 2 * 2 * 2
        assert len(spec.members()) == len(spec)

    def test_sites_axis_overrides_default(self):
        spec = EnsembleSpec.parse("sites=berkeley:houston,years=2024")
        assert spec.sites == ("berkeley", "houston")

    def test_spec_string_round_trips(self):
        spec = EnsembleSpec.parse(
            "years=2020-2024,growth=1.0:1.15,severity=1.0:1.5",
            sites=("houston",),
            n_hours=N_HOURS,
        )
        again = EnsembleSpec.parse(spec.spec_string(), n_hours=N_HOURS)
        assert again.members() == spec.members()

    def test_member_names_unique_and_compact(self):
        spec = EnsembleSpec.parse("years=2020-2021,growth=1.0:1.3,severity=1.0:1.5")
        names = [m.name() for m in spec.members()]
        assert len(set(names)) == len(names)
        assert "houston-2020" in names  # all-default member keeps site-year name
        assert any("+g1.3" in n and "+x1.5" in n for n in names)

    @pytest.mark.parametrize(
        "bad",
        [
            "decade=2020",            # unknown axis
            "years",                  # no '='
            "years=",                 # empty values
            "years=20x0",             # malformed int
            "years=2024-2020",        # empty range
            "growth=fast",            # malformed float
            "growth=0",               # non-positive growth
            "severity=-1",            # non-positive severity
            "carbon=fusion",          # unknown trajectory
            "tariff=negative",        # unknown variant
            "sites=atlantis",         # unknown site
            "years=2020:2020",        # duplicate axis values
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            EnsembleSpec.parse(bad)


class TestSeedingInvariants:
    """Adding an axis never perturbs existing members (DESIGN.md §6)."""

    def test_year_only_member_matches_plain_scenario(self):
        [member] = build_ensemble(
            EnsembleSpec(years=(2021,), n_hours=N_HOURS)
        )
        plain = build_scenario("houston", year_label=2021, n_hours=N_HOURS)
        np.testing.assert_array_equal(member.solar_per_kw_w, plain.solar_per_kw_w)
        np.testing.assert_array_equal(member.wind_per_turbine_w, plain.wind_per_turbine_w)
        np.testing.assert_array_equal(member.workload.power_w, plain.workload.power_w)
        np.testing.assert_array_equal(
            member.carbon.intensity_g_per_kwh, plain.carbon.intensity_g_per_kwh
        )

    def test_crossing_in_an_axis_preserves_base_members(self):
        base = build_ensemble(EnsembleSpec(years=(2020, 2021), n_hours=N_HOURS))
        crossed = build_ensemble(
            EnsembleSpec(
                years=(2020, 2021),
                growth=(1.0, 1.3),
                severity=(1.0, 1.5),
                carbon=("baseline", "cleaner"),
                n_hours=N_HOURS,
            )
        )
        by_name = {sc.name: sc for sc in crossed}
        for sc in base:
            twin = by_name[sc.name]
            np.testing.assert_array_equal(twin.solar_per_kw_w, sc.solar_per_kw_w)
            np.testing.assert_array_equal(twin.wind_per_turbine_w, sc.wind_per_turbine_w)
            np.testing.assert_array_equal(twin.workload.power_w, sc.workload.power_w)
            np.testing.assert_array_equal(
                twin.carbon.intensity_g_per_kwh, sc.carbon.intensity_g_per_kwh
            )

    def test_severity_scales_drawn_events_not_the_draws(self):
        loc = get_location("houston")
        base = dunkelflaute_events(loc, 2024)
        harsh = dunkelflaute_events(loc, 2024, severity=1.8)
        assert dunkelflaute_events(loc, 2024, severity=1.0) == base
        assert len(harsh) == len(base)
        for b, h in zip(base, harsh):
            assert h.start_hour == b.start_hour  # same underlying draw
            assert h.wind_factor < b.wind_factor  # deeper
            assert h.solar_factor < b.solar_factor
            assert h.duration_hours >= b.duration_hours  # longer

    def test_severity_validation(self):
        with pytest.raises(ConfigurationError):
            dunkelflaute_events(get_location("houston"), 2024, severity=0.0)
        with pytest.raises(ConfigurationError):
            WeatherEvent(0, 24, 0.1, 0.4).scaled(-1.0)

    def test_carbon_trajectory_rescales_mean_only(self):
        from repro.data.carbon_intensity import synthesize_carbon_intensity

        base = synthesize_carbon_intensity("ERCOT", 2024, N_HOURS)
        clean = synthesize_carbon_intensity("ERCOT", 2024, N_HOURS, trajectory="cleaner")
        assert clean.mean() == pytest.approx(0.7 * base.mean())
        # Same hourly structure: clipping floor aside, a pure rescale.
        np.testing.assert_allclose(
            clean.intensity_g_per_kwh, 0.7 * base.intensity_g_per_kwh, rtol=1e-12
        )

    def test_tariff_variants(self):
        from repro.data.tariffs import tou_tariff_for

        base = tou_tariff_for("ERCOT")
        flat = tou_tariff_for("ERCOT", "flat")
        volatile = tou_tariff_for("ERCOT", "volatile")
        assert np.unique(flat.price_by_hour_of_day()).size == 1
        assert volatile.on_peak_usd_kwh > base.on_peak_usd_kwh
        assert volatile.off_peak_usd_kwh < base.off_peak_usd_kwh
        with pytest.raises(ConfigurationError):
            tou_tariff_for("ERCOT", "surge")


class TestUnitProfileSharing:
    def test_members_differing_in_cheap_axes_share_profiles(self):
        members = build_ensemble(
            EnsembleSpec(
                years=(2022,),
                growth=(1.0, 1.3),
                carbon=("baseline", "dirtier"),
                n_hours=N_HOURS,
            )
        )
        assert len(members) == 4
        first = members[0]
        for sc in members[1:]:
            # identity, not equality: one synthesis, shared by all four
            assert sc.solar_per_kw_w is first.solar_per_kw_w
            assert sc.wind_per_turbine_w is first.wind_per_turbine_w

    def test_parallel_build_identical_to_serial(self):
        from repro.confsys import MultiprocessingLauncher

        spec = EnsembleSpec(
            years=(2020, 2021), severity=(1.0, 1.4), n_hours=N_HOURS
        )
        clear_scenario_cache()
        parallel = build_ensemble(spec, launcher=MultiprocessingLauncher(n_workers=2))
        clear_scenario_cache()
        serial = build_ensemble(spec)
        assert [sc.name for sc in parallel] == [sc.name for sc in serial]
        for p, s in zip(parallel, serial):
            np.testing.assert_array_equal(p.solar_per_kw_w, s.solar_per_kw_w)
            np.testing.assert_array_equal(p.wind_per_turbine_w, s.wind_per_turbine_w)
            np.testing.assert_array_equal(p.workload.power_w, s.workload.power_w)


class TestStackedEnsembleEvaluation:
    def test_stacked_matches_serial_bit_for_bit(self):
        scenarios = build_ensemble(
            EnsembleSpec(years=(2020, 2021), growth=(1.0, 1.2), n_hours=N_HOURS)
        )
        robust = evaluate_ensemble(scenarios, COMPS, aggregate="cvar:0.5")
        serial = [BatchEvaluator(sc).evaluate(COMPS) for sc in scenarios]
        for i, r in enumerate(robust):
            for s in range(len(scenarios)):
                for name in COMPARABLE_METRIC_FIELDS:
                    assert getattr(r.per_scenario[s].metrics, name) == getattr(
                        serial[s][i].metrics, name
                    )

    def test_evaluate_across_years_is_one_stacked_loop(self):
        """The multi-year veneer must agree with a serial per-year sweep."""
        from repro.core.multiyear import evaluate_across_years

        years = (2022, 2023)
        outcomes = evaluate_across_years("houston", COMPS, years, n_hours=N_HOURS)
        for j, year in enumerate(years):
            sc = build_scenario("houston", year_label=year, n_hours=N_HOURS)
            for i, e in enumerate(BatchEvaluator(sc).evaluate(COMPS)):
                assert outcomes[i].operational_tco2_day_by_year[j] == (
                    e.metrics.operational_tco2_per_day
                )
                assert outcomes[i].coverage_by_year[j] == e.metrics.coverage

    def test_cvar_shim_delegates_to_metrics(self):
        from repro.core.metrics import aggregate_values
        from repro.core.multiyear import MultiYearOutcome

        outcome = MultiYearOutcome(
            composition=COMPS[0],
            embodied_tonnes=0.0,
            operational_tco2_day_by_year=np.array([4.0, 1.0, 3.0, 2.0]),
            coverage_by_year=np.zeros(4),
        )
        assert outcome.cvar_operational(0.5) == aggregate_values(
            [4.0, 1.0, 3.0, 2.0], "cvar:0.5"
        )
        with pytest.raises(ConfigurationError):
            outcome.cvar_operational(alpha=0.0)

    def test_runner_rejects_malformed_aggregate_early(self, houston_month):
        from repro.core.study_runner import OptimizationRunner

        with pytest.raises(ConfigurationError):
            OptimizationRunner([houston_month], aggregate="cvar:nope")


def _journal_trials(path):
    studies = JournalStorage(path).load_all()
    [stored] = studies.values()
    return [(t.params, t.values) for t in stored.trials]


class TestEnsembleStudyResume:
    """A killed `repro study run --ensemble …` resumed from its journal
    reproduces the identical final Pareto front (DESIGN.md §3 + §6)."""

    ARGS = [
        "--ensemble", "years=2020-2021,growth=1.0:1.2",
        "--aggregate", "cvar:0.25",
        "--population", "2",
        "--seed", "11",
        "--set", f"scenario.n_hours={N_HOURS}",
    ]

    def _run(self, journal, *extra):
        from repro.cli import main

        return main(["study", *extra, "--journal", str(journal)])

    def test_interrupted_resume_reaches_identical_front(self, tmp_path, capsys):
        from repro.cli import main

        full = tmp_path / "full.jsonl"
        assert main(["study", "run", "--journal", str(full), "--trials", "8", *self.ARGS]) == 0

        interrupted = tmp_path / "interrupted.jsonl"
        # "Kill" after 5 of 8 trials: run to a smaller target, then
        # resume with the real one — same journal state as a mid-run kill
        # plus §3's partial-generation truncation on reload.
        assert main(["study", "run", "--journal", str(interrupted), "--trials", "5", *self.ARGS]) == 0
        assert main(["study", "resume", "--journal", str(interrupted), "--trials", "8"]) == 0

        assert _journal_trials(interrupted) == _journal_trials(full)

    def test_status_prints_ensemble_metadata(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "ens.jsonl"
        assert main(["study", "run", "--journal", str(journal), "--trials", "4", *self.ARGS]) == 0
        capsys.readouterr()
        assert main(["study", "status", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "ensemble (4 members):" in out
        assert "years=2020:2021" in out and "growth=1.0:1.2" in out
        assert "aggregate: cvar:0.25" in out
