"""Financial evaluation: CAPEX, NPC, levelized cost (repro.core.finance)."""

import numpy as np
import pytest

from repro.core.composition import MicrogridComposition
from repro.core.fastsim import BatchEvaluator
from repro.core.finance import (
    CostParameters,
    annual_om_usd,
    capex_usd,
    cost_carbon_points,
    levelized_cost_usd_per_mwh,
    net_present_cost_usd,
)
from repro.exceptions import ConfigurationError


class TestCostParameters:
    def test_annuity_factor_zero_rate(self):
        p = CostParameters(discount_rate=0.0, horizon_years=20.0)
        assert p.annuity_factor() == pytest.approx(20.0)

    def test_annuity_factor_discounting(self):
        p = CostParameters(discount_rate=0.07, horizon_years=20.0)
        assert 10.0 < p.annuity_factor() < 11.0  # standard value ≈ 10.59

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostParameters(discount_rate=1.5)
        with pytest.raises(ConfigurationError):
            CostParameters(horizon_years=0.0)
        with pytest.raises(ConfigurationError):
            CostParameters(solar_capex_usd_per_kw=-1.0)


class TestCapexOm:
    def test_capex_linear(self):
        comp = MicrogridComposition.from_mw(12.0, 8.0, 22.5)
        p = CostParameters()
        expected = (
            8_000.0 * p.solar_capex_usd_per_kw
            + 12_000.0 * p.wind_capex_usd_per_kw
            + 22_500.0 * p.battery_capex_usd_per_kwh
        )
        assert capex_usd(comp, p) == pytest.approx(expected)

    def test_grid_only_costs_nothing_upfront(self):
        assert capex_usd(MicrogridComposition(0, 0.0, 0)) == 0.0
        assert annual_om_usd(MicrogridComposition(0, 0.0, 0)) == 0.0


class TestNpcLcoe:
    @pytest.fixture(scope="class")
    def evaluated(self, houston):
        be = BatchEvaluator(houston)
        return {
            "baseline": be.evaluate_one(MicrogridComposition(0, 0.0, 0)),
            "mid": be.evaluate_one(MicrogridComposition.from_mw(9.0, 8.0, 22.5)),
            "max": be.evaluate_one(MicrogridComposition.from_mw(30.0, 40.0, 60.0)),
        }

    def test_baseline_npc_is_pure_grid_bill(self, evaluated):
        e = evaluated["baseline"]
        p = CostParameters()
        expected = e.metrics.electricity_cost_usd * p.annuity_factor()
        assert net_present_cost_usd(e, p) == pytest.approx(expected)

    def test_npc_components_add_up(self, evaluated):
        e = evaluated["mid"]
        p = CostParameters()
        npc = net_present_cost_usd(e, p)
        assert npc == pytest.approx(
            capex_usd(e.composition, p)
            + (annual_om_usd(e.composition, p) + e.metrics.electricity_cost_usd)
            * p.annuity_factor()
        )

    def test_lcoe_positive_and_plausible(self, evaluated):
        # The heavily over-built composition is expensive (paper's point:
        # the last percent of coverage costs dearly), but even it should
        # stay under ~$600/MWh; the others well under.
        assert 10.0 < levelized_cost_usd_per_mwh(evaluated["baseline"]) < 200.0
        assert 10.0 < levelized_cost_usd_per_mwh(evaluated["mid"]) < 300.0
        assert 100.0 < levelized_cost_usd_per_mwh(evaluated["max"]) < 600.0

    def test_renewables_cut_grid_bill(self, evaluated):
        assert (
            evaluated["mid"].metrics.electricity_cost_usd
            < evaluated["baseline"].metrics.electricity_cost_usd
        )

    def test_cost_carbon_points_shape(self, evaluated):
        points = cost_carbon_points(list(evaluated.values()))
        assert points.shape == (3, 2)
        assert np.all(points[:, 1] >= 0)

    def test_cost_carbon_tradeoff_exists(self, evaluated):
        """Cheapest option is not the cleanest (otherwise no trade-off)."""
        points = cost_carbon_points(list(evaluated.values()))
        cheapest = int(np.argmin(points[:, 0]))
        cleanest = int(np.argmin(points[:, 1]))
        assert cheapest != cleanest
