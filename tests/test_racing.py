"""Racing invariants (DESIGN.md §8).

The contract the racing engine must keep:

* rung subsets are nested, deterministic under the schedule spec, and
  survive a parse/spec_string round trip;
* the raced Pareto front is identical to the full-ensemble front — on
  both paper sites, for sound-bound and heuristic-bound aggregates
  alike (the promote-back verification closes every elimination);
* a ``kill -9`` mid-rung plus ``study resume`` reaches the identical
  front an uninterrupted raced run reaches;
* pruned trials carry their per-rung partial values as intermediate
  reports and the rung reached as a system attr (persisted, so
  ``study status`` can histogram rungs after a crash).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.blackbox import NSGA2Sampler, create_study
from repro.blackbox.parallel import ParallelStudyRunner
from repro.blackbox.trial import TrialState
from repro.core.kernel import HAS_NUMBA
from repro.core.ensemble import (
    EnsembleSpec,
    build_ensemble,
    evaluate_ensemble,
    member_subset,
)
from repro.core.parameterspace import ParameterSpace
from repro.core.pareto import pareto_front
from repro.core.racing import (
    RacingEvaluator,
    RungSchedule,
    partial_lower_bound,
    race_front,
)
from repro.core.fidelity import fidelity_race_front, sibling_stack
from repro.core.study_runner import (
    RACING_RUNG_ATTR,
    CompositionObjective,
    OptimizationRunner,
)
from repro.exceptions import ConfigurationError

SMALL_SPACE = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=2)


@pytest.fixture(scope="module")
def houston_ensemble():
    """Five-member weather-year ensemble, two weeks each (fast)."""
    spec = EnsembleSpec.parse("years=2020-2024", sites=("houston",), n_hours=24 * 14)
    return build_ensemble(spec)


@pytest.fixture(scope="module")
def berkeley_ensemble():
    spec = EnsembleSpec.parse("years=2020-2024", sites=("berkeley",), n_hours=24 * 14)
    return build_ensemble(spec)


def _front_key(front):
    return {(e.composition, e.objectives()) for e in front}


class TestRungSchedule:
    def test_parse_round_trip(self):
        for spec in ("rungs=2,8,full", "rungs=1,4,full,order=seeded,seed=3", "rungs=full"):
            schedule = RungSchedule.parse(spec)
            assert schedule.spec_string() == spec
            assert RungSchedule.parse(schedule.spec_string()) == schedule

    def test_parse_accepts_bare_rung_list(self):
        assert RungSchedule.parse("2,8,full") == RungSchedule(rungs=(2, 8, None))

    def test_parse_rejects_garbage(self):
        for bad in ("rungs=2,8", "rungs=full,2,full", "rungs=8,2,full",
                    "rungs=0,full", "rungs=2,x,full", "rungs=2,full,order=bogus",
                    "rungs=2,full,seed=x", "bogus=1", "",
                    # stray bare tokens must not extend order=/seed=
                    "rungs=2,full,seed=3,9", "rungs=2,full,order=seeded,hardest"):
            with pytest.raises(ConfigurationError):
                RungSchedule.parse(bad)

    def test_resolve_collapses_oversized_rungs(self):
        schedule = RungSchedule.parse("rungs=2,8,full")
        assert schedule.resolve(20) == (2, 8, 20)
        assert schedule.resolve(5) == (2, 5)
        assert schedule.resolve(2) == (2,)
        assert schedule.resolve(1) == (1,)


class TestNestedSubsets:
    def test_subsets_nest_and_are_deterministic(self):
        schedule = RungSchedule.parse("rungs=2,8,full,order=seeded,seed=11")
        first = schedule.subsets(20)
        again = schedule.subsets(20)
        assert first == again
        for smaller, larger in zip(first, first[1:]):
            assert set(smaller) < set(larger)
        assert first[-1] == tuple(range(20))

    def test_seed_changes_the_subsets(self):
        a = member_subset(20, 8, seed=0)
        b = member_subset(20, 8, seed=1)
        assert a != b
        assert member_subset(20, 8, seed=0) == a

    def test_subsets_survive_a_spec_round_trip(self):
        schedule = RungSchedule.parse("rungs=3,9,full,order=seeded,seed=5")
        rebuilt = RungSchedule.parse(schedule.spec_string())
        assert rebuilt.subsets(17) == schedule.subsets(17)

    def test_hardest_order_is_deterministic_per_ensemble(self, houston_ensemble):
        evaluators = [
            RacingEvaluator(houston_ensemble, RungSchedule.parse("rungs=2,full"))
            for _ in range(2)
        ]
        assert evaluators[0].subsets == evaluators[1].subsets
        for smaller, larger in zip(evaluators[0].subsets, evaluators[0].subsets[1:]):
            assert set(smaller) < set(larger)

    def test_bare_schedule_refuses_to_guess_the_hardest_order(self):
        """Regression: subsets() must not silently fall back to the
        seeded permutation when the spec says order=hardest."""
        with pytest.raises(ConfigurationError):
            RungSchedule.parse("rungs=2,full").subsets(10)
        # explicit rankings and the seeded order still work
        assert RungSchedule.parse("rungs=2,full").subsets_from_order(
            [3, 1, 0, 2]
        ) == [(1, 3), (0, 1, 2, 3)]
        assert RungSchedule.parse("rungs=2,full,order=seeded").subsets(4)

    def test_parallel_and_serial_drivers_race_identical_subsets(self, houston_ensemble):
        """The hardest-first subsets must not depend on the driver."""
        from repro.core.racing import difficulty_ranking

        schedule = RungSchedule.parse("rungs=2,full")
        evaluator = RacingEvaluator(houston_ensemble, schedule)
        objective = CompositionObjective(tuple(houston_ensemble), space=SMALL_SPACE)
        assert evaluator.subsets == schedule.subsets_from_order(
            difficulty_ranking(objective.member_difficulty())
        )


class TestLowerBound:
    def test_padded_bound_never_exceeds_the_exact_aggregate(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for aggregate in ("worst", "mean", "cvar:0.4", "quantile:0.5"):
            from repro.core.metrics import aggregate_values

            exact = aggregate_values(values, aggregate)
            for k in range(1, len(values) + 1):
                bound = partial_lower_bound(values[:k], len(values), aggregate)
                assert bound is not None and bound <= exact + 1e-12

    def test_negative_values_void_the_bound(self):
        assert partial_lower_bound([-1.0, 2.0], 4, "mean") is None

    def test_worst_bound_is_sound_for_any_sign(self):
        # max(seen) can only grow with more members, negative or not
        assert partial_lower_bound([-5.0, -2.0], 4, "worst") == -2.0

    def test_uncertified_objectives_void_padded_bounds(self):
        # all-positive *seen* values prove nothing about unseen members
        # unless the objective is non-negative by construction
        assert partial_lower_bound([3.0, 4.0], 4, "mean", nonnegative=False) is None
        assert partial_lower_bound([3.0, 4.0], 4, "worst", nonnegative=False) == 4.0

    def test_too_many_values_raise(self):
        with pytest.raises(ConfigurationError):
            partial_lower_bound([1.0, 2.0], 1, "worst")


class TestRacedFrontExactness:
    """The tentpole guarantee: raced front == full front, both sites."""

    @pytest.mark.parametrize("site", ["houston", "berkeley"])
    @pytest.mark.parametrize("aggregate", ["worst", "cvar:0.4", "mean"])
    def test_front_identical_to_full_evaluation(
        self, site, aggregate, houston_ensemble, berkeley_ensemble
    ):
        ensemble = houston_ensemble if site == "houston" else berkeley_ensemble
        comps = SMALL_SPACE.all_compositions()
        full_front = pareto_front(evaluate_ensemble(ensemble, comps, aggregate=aggregate))
        raced_front, outcome = race_front(
            ensemble, comps, RungSchedule.parse("rungs=2,full"), aggregate=aggregate
        )
        assert _front_key(full_front) == _front_key(raced_front)
        # everything returned as evaluated is genuinely full-fidelity
        assert all(
            len(e.per_scenario) == len(ensemble)
            for e in outcome.evaluated.values()
        )
        # accounting is consistent
        stats = outcome.stats
        assert stats.pruned + len(outcome.evaluated) == stats.candidates
        assert stats.member_evals <= stats.full_member_evals + len(ensemble)

    def test_seeded_order_is_also_exact(self, houston_ensemble):
        comps = SMALL_SPACE.all_compositions()
        full_front = pareto_front(evaluate_ensemble(houston_ensemble, comps))
        raced_front, _ = race_front(
            houston_ensemble,
            comps,
            RungSchedule.parse("rungs=2,full,order=seeded,seed=4"),
        )
        assert _front_key(full_front) == _front_key(raced_front)

    def test_known_evaluations_are_reused_not_recomputed(self, houston_ensemble):
        comps = SMALL_SPACE.all_compositions()
        evaluator = RacingEvaluator(houston_ensemble, RungSchedule.parse("rungs=2,full"))
        first = evaluator.race(comps)
        again = evaluator.race(comps, known=dict(first.evaluated))
        assert again.stats.member_evals == 0 or set(again.pruned) == set(first.pruned)
        # candidates already exact pay zero member evaluations
        assert again.stats.member_evals < first.stats.member_evals


class TestEngineMatrix:
    """The dispatch engine knob (DESIGN.md §9) must not change racing."""

    ENGINES = [
        "segments",
        pytest.param(
            "njit",
            marks=pytest.mark.skipif(
                not HAS_NUMBA,
                reason="numba not installed — the njit engine leg runs on the CI numba job",
            ),
        ),
    ]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_raced_front_bit_identical_across_engines(self, engine, houston_ensemble):
        comps = SMALL_SPACE.all_compositions()
        schedule = RungSchedule.parse("rungs=2,full")
        ref_front, ref_outcome = race_front(
            houston_ensemble, comps, schedule, engine="loop"
        )
        front, outcome = race_front(houston_ensemble, comps, schedule, engine=engine)
        assert _front_key(front) == _front_key(ref_front)
        # not just the front: every full-fidelity evaluation and every
        # elimination decision must be bit-identical
        assert set(outcome.pruned) == set(ref_outcome.pruned)
        assert set(outcome.evaluated) == set(ref_outcome.evaluated)
        for comp, e in outcome.evaluated.items():
            assert e.objectives() == ref_outcome.evaluated[comp].objectives(), comp


class TestFloat32Rungs:
    """The float32 segments variant in the lower rungs (DESIGN.md §9):
    partial aggregates carry a ~1e-5 relative error, yet eliminations
    stay sound and the front is bit-identical once survivors are
    promoted to full-fidelity float64 evaluations."""

    @staticmethod
    def _float32_lower_rung_slice(ensemble):
        """Slice evaluator: float32 segments for partial rungs, the
        float64 reference path for the full rung."""
        from repro.core import kernel
        from repro.core.dispatch import stack_scenarios
        from repro.core.fastsim import (
            _candidate_vectors,
            _results_from_dispatch,
            evaluate_member_slice,
        )
        from repro.sam.batterymodels.clc import CLCParameters

        def slice_fn(member_indices, comps):
            if len(member_indices) == len(ensemble):
                return evaluate_member_slice(ensemble, member_indices, comps)
            stack = stack_scenarios([ensemble[j] for j in member_indices])
            solar_kw, turb_eff, cap = _candidate_vectors(comps)
            params = CLCParameters(capacity_wh=1.0)
            res = kernel.run_dispatch_segments(
                stack, solar_kw, turb_eff, cap, params, dtype=np.float32
            )
            return _results_from_dispatch(
                stack, comps, solar_kw, turb_eff, cap, params, res
            )

        return slice_fn

    @pytest.mark.parametrize("site", ["houston", "berkeley"])
    def test_eliminations_sound_front_exact_after_f64_promotion(
        self, site, houston_ensemble, berkeley_ensemble
    ):
        ensemble = houston_ensemble if site == "houston" else berkeley_ensemble
        comps = SMALL_SPACE.all_compositions()
        _, outcome = race_front(
            ensemble,
            comps,
            RungSchedule.parse("rungs=2,full"),
            evaluate_slice=self._float32_lower_rung_slice(ensemble),
        )
        # promote every survivor to a pure-float64 full evaluation; the
        # front over them must equal the never-raced float64 front of
        # the whole candidate set bit-for-bit — i.e. no candidate that
        # belongs on the true front was eliminated by a float32 rung
        survivors = list(outcome.evaluated)
        promoted = pareto_front(evaluate_ensemble(ensemble, survivors))
        full = pareto_front(evaluate_ensemble(ensemble, comps))
        assert _front_key(promoted) == _front_key(full)
        assert outcome.stats.pruned > 0, "racing never pruned — vacuous test"

    def test_float32_partial_aggregates_within_documented_epsilon(
        self, houston_ensemble, berkeley_ensemble
    ):
        """The rung-bound epsilon: float32 partial aggregates on both
        paper sites sit within 1e-4 of the float64 values (DESIGN.md §9
        documents the float32 path as non-bitwise but bound-accurate)."""
        from repro.core.fastsim import evaluate_member_slice

        comps = SMALL_SPACE.all_compositions()[:8]
        for ensemble in (houston_ensemble, berkeley_ensemble):
            f32_slice = self._float32_lower_rung_slice(ensemble)
            members = [0, 1]  # a partial rung
            f32 = f32_slice(members, comps)
            f64 = evaluate_member_slice(ensemble, members, comps)
            for row32, row64 in zip(f32, f64):
                for e32, e64 in zip(row32, row64):
                    for got, want in zip(e32.objectives(), e64.objectives()):
                        assert got == pytest.approx(want, rel=1e-4, abs=1e-9)


class TestStudyRacing:
    def _run(self, ensemble, storage, n_trials, load=False, racing="rungs=2,full"):
        return OptimizationRunner(ensemble, space=SMALL_SPACE).run_blackbox(
            n_trials=n_trials,
            sampler=NSGA2Sampler(population_size=10, seed=42),
            storage=storage,
            study_name="raced",
            load_if_exists=load,
            racing=racing,
        )

    def test_pruned_trials_carry_reports_and_rung_attr(self, houston_ensemble, tmp_path):
        result = self._run(houston_ensemble, str(tmp_path / "r.jsonl"), 30)
        pruned = [t for t in result.study.trials if t.state == TrialState.PRUNED]
        assert pruned and result.n_pruned == len(pruned)
        for trial in pruned:
            assert trial.intermediate, "pruned trial has no per-rung reports"
            assert trial.system_attrs[RACING_RUNG_ATTR] < len(houston_ensemble)
        for trial in result.study.trials:
            if trial.state == TrialState.COMPLETE:
                assert trial.system_attrs[RACING_RUNG_ATTR] == len(houston_ensemble)
        # the racing schedule is persisted for resume
        assert result.study.metadata["racing"] == "rungs=2,full"

    def test_resume_reaches_identical_front(self, houston_ensemble, tmp_path):
        full = self._run(houston_ensemble, str(tmp_path / "full.jsonl"), 40)
        self._run(houston_ensemble, str(tmp_path / "cut.jsonl"), 15)
        resumed = self._run(houston_ensemble, str(tmp_path / "cut.jsonl"), 40, load=True)
        assert [
            (t.params, t.values, t.state) for t in resumed.study.trials
        ] == [(t.params, t.values, t.state) for t in full.study.trials]
        assert _front_key(resumed.front()) == _front_key(full.front())

    def test_resume_enforces_the_persisted_schedule(self, houston_ensemble, tmp_path):
        """Regression: resuming a raced study without (or with another)
        schedule would silently breed a different population while the
        metadata still claims the original rungs — hard error instead."""
        from repro.exceptions import OptimizationError

        path = str(tmp_path / "r.jsonl")
        self._run(houston_ensemble, path, 15)
        for wrong in (None, "rungs=3,full"):
            with pytest.raises(OptimizationError, match="racing"):
                self._run(houston_ensemble, path, 40, load=True, racing=wrong)
        # and racing cannot be *added* to a study that never raced
        plain = str(tmp_path / "plain.jsonl")
        self._run(houston_ensemble, plain, 15, racing=None)
        with pytest.raises(OptimizationError, match="racing"):
            self._run(houston_ensemble, plain, 40, load=True)


KILL_CHILD = textwrap.dedent(
    """
    import os, signal, sys

    from repro.blackbox import JournalStorage, NSGA2Sampler
    from repro.core.ensemble import EnsembleSpec, build_ensemble
    from repro.core.parameterspace import ParameterSpace
    from repro.core.study_runner import OptimizationRunner

    path, kill_after = sys.argv[1], int(sys.argv[2])

    class KillingJournal(JournalStorage):
        finishes = 0
        def record_trial_finish(self, study_name, trial):
            super().record_trial_finish(study_name, trial)
            KillingJournal.finishes += 1
            if KillingJournal.finishes >= kill_after:
                os.kill(os.getpid(), signal.SIGKILL)  # the real thing

    ensemble = build_ensemble(
        EnsembleSpec.parse("years=2020-2024", sites=("houston",), n_hours=24 * 14)
    )
    space = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=2)
    OptimizationRunner(ensemble, space=space).run_blackbox(
        n_trials=40,
        sampler=NSGA2Sampler(population_size=10, seed=42),
        storage=KillingJournal(path),
        study_name="raced",
        racing="rungs=2,full",
    )
    """
)


class TestKillDashNineMidRung:
    """A genuine ``kill -9`` while a raced generation is being told —
    the journal holds a partial mix of PRUNED and COMPLETE records —
    must resume to the identical front an uninterrupted raced run
    reaches."""

    def test_sigkill_then_resume_identical_front(self, tmp_path, houston_ensemble):
        path = tmp_path / "raced.jsonl"
        script = tmp_path / "child.py"
        script.write_text(KILL_CHILD)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(path), "17"],
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        resumed = OptimizationRunner(houston_ensemble, space=SMALL_SPACE).run_blackbox(
            n_trials=40,
            sampler=NSGA2Sampler(population_size=10, seed=42),
            storage=str(path),
            study_name="raced",
            load_if_exists=True,
            racing="rungs=2,full",
        )
        # storage enables the per-trial RNG streams resume replays, so
        # the uninterrupted reference needs a journal of its own too
        reference = OptimizationRunner(houston_ensemble, space=SMALL_SPACE).run_blackbox(
            n_trials=40,
            sampler=NSGA2Sampler(population_size=10, seed=42),
            storage=str(tmp_path / "reference.jsonl"),
            study_name="raced",
            racing="rungs=2,full",
        )
        assert [
            (t.params, t.values, t.state) for t in resumed.study.trials
        ] == [(t.params, t.values, t.state) for t in reference.study.trials]
        assert _front_key(resumed.front()) == _front_key(reference.front())


class TestParallelRungDispatch:
    def _run(self, ensemble):
        objective = CompositionObjective(
            tuple(ensemble), space=SMALL_SPACE, aggregate="worst"
        )
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=8, seed=5),
        )
        runner = ParallelStudyRunner(study, SMALL_SPACE.distributions(), batch_size=8)
        runner.optimize(objective, n_trials=24, racing="rungs=2,full")
        return study, objective

    def test_deterministic_and_bit_identical_survivors(self, houston_ensemble):
        (s1, objective), (s2, _) = self._run(houston_ensemble), self._run(houston_ensemble)
        assert [(t.params, t.values, t.state) for t in s1.trials] == [
            (t.params, t.values, t.state) for t in s2.trials
        ]
        pruned = [t for t in s1.trials if t.state == TrialState.PRUNED]
        assert pruned, "racing never pruned a trial"
        for trial in pruned:
            assert trial.intermediate
        for trial in s1.trials:
            if trial.state == TrialState.COMPLETE:
                # survivors pay the unchanged full-fidelity objective
                assert tuple(objective(dict(trial.params))) == trial.values

    def test_racing_requires_multi_fidelity_hooks(self):
        from repro.exceptions import OptimizationError

        study = create_study(sampler=NSGA2Sampler(population_size=4, seed=1))
        runner = ParallelStudyRunner(study, SMALL_SPACE.distributions(), batch_size=4)
        with pytest.raises(OptimizationError):
            runner.optimize(lambda params: 0.0, n_trials=4, racing="rungs=2,full")

    def test_parallel_resume_enforces_the_persisted_schedule(
        self, houston_ensemble, tmp_path
    ):
        """Same identity rule as the serial driver: a resumed study must
        race the persisted schedule (and the schedule is persisted even
        on the storage-attach path, so this is detectable at all)."""
        from repro.exceptions import OptimizationError

        objective = CompositionObjective(
            tuple(houston_ensemble), space=SMALL_SPACE, aggregate="worst"
        )
        path = str(tmp_path / "p.jsonl")
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=8, seed=5),
        )
        ParallelStudyRunner(
            study, SMALL_SPACE.distributions(), batch_size=8, storage=path
        ).optimize(objective, n_trials=8, racing="rungs=2,full")
        assert study.metadata["racing"] == "rungs=2,full"

        resumed = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=8, seed=5),
            storage=path,
            load_if_exists=True,
        )
        runner = ParallelStudyRunner(
            resumed, SMALL_SPACE.distributions(), batch_size=8
        )
        for wrong in (None, "rungs=3,full"):
            with pytest.raises(OptimizationError, match="racing"):
                runner.optimize(objective, n_trials=16, racing=wrong)
        runner.optimize(objective, n_trials=16, racing="rungs=2,full")
        assert len(resumed.trials) == 16

    def test_rungs_never_resimulate_a_member(self, houston_ensemble):
        """Nested subsets + incremental dispatch: each (trial, member)
        cell is evaluated at most once, and a survivor pays exactly the
        full ensemble — racing can never cost more than not racing."""
        calls: "list[tuple[tuple, tuple[int, ...]]]" = []

        class CountingObjective(CompositionObjective):
            def member_values(self, params, member_indices):
                calls.append((tuple(sorted(params.items())), tuple(member_indices)))
                return super().member_values(params, member_indices)

        objective = CountingObjective(
            tuple(houston_ensemble), space=SMALL_SPACE, aggregate="worst"
        )
        study = create_study(
            directions=["minimize", "minimize"],
            sampler=NSGA2Sampler(population_size=8, seed=5),
        )
        runner = ParallelStudyRunner(study, SMALL_SPACE.distributions(), batch_size=8)
        runner.optimize(objective, n_trials=16, racing="rungs=2,full")

        n_members = len(houston_ensemble)
        trial_count: "dict[tuple, int]" = {}
        for trial in study.trials:
            key = tuple(sorted(trial.params.items()))
            trial_count[key] = trial_count.get(key, 0) + 1
        per_key_members: "dict[tuple, list[int]]" = {}
        for params_key, members in calls:
            per_key_members.setdefault(params_key, []).extend(members)
        for params_key, members in per_key_members.items():
            # each of the key's trials sees a member at most once
            for member in set(members):
                assert members.count(member) <= trial_count[params_key], (
                    f"member {member} re-simulated for {params_key}"
                )
            assert len(members) <= trial_count[params_key] * n_members
        # racing never costs more than the non-raced run, and pruning
        # means it costs strictly less
        total = sum(len(members) for _, members in calls)
        n_complete = sum(1 for t in study.trials if t.state == TrialState.COMPLETE)
        assert n_complete * n_members <= total < len(study.trials) * n_members


# -- fidelity-ladder racing (DESIGN.md §11) -----------------------------------


class TestFidelityRacedFrontExactness:
    """The fidelity tentpole guarantee: a ladder-raced front is
    bit-identical to evaluating every candidate at ladder-top (full)
    physics — on both paper sites, for every aggregate, including
    member-rung × fidelity-rung combined schedules."""

    LADDER = "fidelity=lo,mid,full"

    @pytest.mark.parametrize("site", ["houston", "berkeley"])
    @pytest.mark.parametrize("aggregate", ["worst", "cvar:0.25", "mean"])
    def test_front_identical_to_full_fidelity_evaluation(
        self, site, aggregate, houston_ensemble, berkeley_ensemble
    ):
        ensemble = houston_ensemble if site == "houston" else berkeley_ensemble
        comps = SMALL_SPACE.all_compositions()
        full_front = pareto_front(
            evaluate_ensemble(
                sibling_stack(ensemble, "full"), comps, aggregate=aggregate
            )
        )
        front, outcome = fidelity_race_front(
            ensemble,
            comps,
            ladder=self.LADDER,
            schedule="rungs=2,full",
            aggregate=aggregate,
        )
        assert _front_key(full_front) == _front_key(front)
        # everything returned as evaluated is genuinely full-physics and
        # full-ensemble
        assert all(
            len(e.per_scenario) == len(ensemble)
            for e in outcome.evaluated.values()
        )
        stats = outcome.stats
        assert stats.pruned + len(outcome.evaluated) == stats.candidates
        assert stats.low_fidelity_evals > 0, "cheap screening never ran"

    @pytest.mark.parametrize(
        "schedule",
        ["rungs=full,order=seeded", "rungs=2,full", "rungs=2,3,full"],
    )
    def test_member_rungs_times_fidelity_rungs(self, schedule, houston_ensemble):
        """The two racing axes compose: member rungs inside each fidelity
        level, candidates climbing both — front still exact."""
        comps = SMALL_SPACE.all_compositions()
        full_front = pareto_front(
            evaluate_ensemble(sibling_stack(houston_ensemble, "full"), comps)
        )
        front, outcome = fidelity_race_front(
            houston_ensemble, comps, ladder=self.LADDER, schedule=schedule
        )
        assert _front_key(full_front) == _front_key(front)
        assert outcome.stats.low_fidelity_evals > 0

    def test_screening_proofs_fire(self, houston_ensemble):
        """Non-vacuity: under ``worst`` some candidates are eliminated
        entirely at cheap physics, paying zero full-physics evals."""
        comps = SMALL_SPACE.all_compositions()
        _, outcome = fidelity_race_front(
            houston_ensemble, comps, ladder=self.LADDER, schedule="rungs=2,full"
        )
        assert outcome.stats.screened > 0
        # every screened candidate is among pruned with a proof recorded
        assert outcome.stats.screened <= outcome.stats.pruned

    def test_race_front_fidelity_axis_delegates(self, houston_ensemble):
        """``race_front(..., fidelity=...)`` is the fidelity engine."""
        comps = SMALL_SPACE.all_compositions()
        via_axis, _ = race_front(
            houston_ensemble,
            comps,
            RungSchedule.parse("rungs=2,full"),
            fidelity="fidelity=lo,full",
        )
        direct, _ = fidelity_race_front(
            houston_ensemble, comps, ladder="fidelity=lo,full", schedule="rungs=2,full"
        )
        assert _front_key(via_axis) == _front_key(direct)

    def test_two_level_ladder_is_also_exact(self, berkeley_ensemble):
        comps = SMALL_SPACE.all_compositions()
        full_front = pareto_front(
            evaluate_ensemble(sibling_stack(berkeley_ensemble, "full"), comps)
        )
        front, _ = fidelity_race_front(
            berkeley_ensemble, comps, ladder="fidelity=lo,full", schedule="rungs=2,full"
        )
        assert _front_key(full_front) == _front_key(front)


class TestStudyFidelityRacing:
    """The study drivers persist the ladder as resume identity."""

    LADDER = "fidelity=lo,mid,full"

    def _run(
        self,
        ensemble,
        storage,
        n_trials,
        load=False,
        racing="rungs=2,full",
        fidelity="fidelity=lo,mid,full",
    ):
        return OptimizationRunner(
            ensemble, space=SMALL_SPACE, fidelity=fidelity
        ).run_blackbox(
            n_trials=n_trials,
            sampler=NSGA2Sampler(population_size=10, seed=42),
            storage=storage,
            study_name="laddered",
            load_if_exists=load,
            racing=racing,
        )

    def test_ladder_persisted_and_values_are_full_physics(
        self, houston_ensemble, tmp_path
    ):
        result = self._run(houston_ensemble, str(tmp_path / "f.jsonl"), 30)
        assert result.study.metadata["fidelity"] == self.LADDER
        assert result.study.metadata["racing"] == "rungs=2,full"
        # COMPLETE values are bit-identical to ladder-top evaluation
        full_stack = tuple(sibling_stack(houston_ensemble, "full"))
        objective = CompositionObjective(full_stack, space=SMALL_SPACE)
        for trial in result.study.trials:
            if trial.state == TrialState.COMPLETE:
                assert tuple(objective(dict(trial.params))) == trial.values

    def test_resume_reaches_identical_front(self, houston_ensemble, tmp_path):
        full = self._run(houston_ensemble, str(tmp_path / "full.jsonl"), 40)
        self._run(houston_ensemble, str(tmp_path / "cut.jsonl"), 15)
        resumed = self._run(
            houston_ensemble, str(tmp_path / "cut.jsonl"), 40, load=True
        )
        assert [
            (t.params, t.values, t.state) for t in resumed.study.trials
        ] == [(t.params, t.values, t.state) for t in full.study.trials]
        assert _front_key(resumed.front()) == _front_key(full.front())

    def test_resume_enforces_the_persisted_ladder(self, houston_ensemble, tmp_path):
        """Resuming with another (or no) ladder would mix physics rungs
        across generations while the metadata still claims the original
        spec — hard error instead."""
        from repro.exceptions import OptimizationError

        path = str(tmp_path / "f.jsonl")
        self._run(houston_ensemble, path, 15)
        for wrong in (None, "fidelity=lo,full", "fidelity=lo,mid,full,margin=0.9"):
            with pytest.raises(OptimizationError, match="fidelity"):
                self._run(houston_ensemble, path, 40, load=True, fidelity=wrong)
        # and a ladder cannot be *added* to a study that never had one
        plain = str(tmp_path / "plain.jsonl")
        self._run(houston_ensemble, plain, 15, fidelity=None)
        with pytest.raises(OptimizationError, match="fidelity"):
            self._run(houston_ensemble, plain, 40, load=True)


KILL_CHILD_FIDELITY = textwrap.dedent(
    """
    import os, signal, sys

    from repro.blackbox import JournalStorage, NSGA2Sampler, SQLiteStorage
    from repro.core.ensemble import EnsembleSpec, build_ensemble
    from repro.core.parameterspace import ParameterSpace
    from repro.core.study_runner import OptimizationRunner

    path, kill_after = sys.argv[1], int(sys.argv[2])
    Base = JournalStorage if path.endswith(".jsonl") else SQLiteStorage

    class KillingStorage(Base):
        finishes = 0
        def record_trial_finish(self, study_name, trial):
            super().record_trial_finish(study_name, trial)
            KillingStorage.finishes += 1
            if KillingStorage.finishes >= kill_after:
                os.kill(os.getpid(), signal.SIGKILL)  # the real thing

    ensemble = build_ensemble(
        EnsembleSpec.parse("years=2020-2024", sites=("houston",), n_hours=24 * 14)
    )
    space = ParameterSpace(max_turbines=4, max_solar_increments=4, max_battery_units=2)
    OptimizationRunner(
        ensemble, space=space, fidelity="fidelity=lo,mid,full"
    ).run_blackbox(
        n_trials=40,
        sampler=NSGA2Sampler(population_size=10, seed=42),
        storage=KillingStorage(path),
        study_name="laddered",
        racing="rungs=2,full",
    )
    """
)


class TestKillDashNineMidFidelityRung:
    """A genuine ``kill -9`` while a fidelity-laddered raced generation
    is being told: the persisted ladder spec plus the per-trial RNG
    streams must carry the resumed study to the identical front an
    uninterrupted run reaches — on the journal and SQLite backends
    alike.  Resuming against the crashed store with a *different*
    ladder is a hard error."""

    @pytest.mark.parametrize("kind", ["journal", "sqlite"])
    def test_sigkill_then_resume_identical_front(
        self, tmp_path, kind, houston_ensemble
    ):
        from repro.blackbox import storage_from_url
        from repro.exceptions import OptimizationError

        path = tmp_path / ("laddered.jsonl" if kind == "journal" else "laddered.db")
        script = tmp_path / "child.py"
        script.write_text(KILL_CHILD_FIDELITY)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(path), "17"],
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # the crashed store already carries the full resume identity
        crashed = storage_from_url(str(path)).load_study("laddered")
        assert crashed.metadata["fidelity"] == "fidelity=lo,mid,full"
        assert crashed.metadata["racing"] == "rungs=2,full"

        def run(storage, load=False, fidelity="fidelity=lo,mid,full"):
            return OptimizationRunner(
                houston_ensemble, space=SMALL_SPACE, fidelity=fidelity
            ).run_blackbox(
                n_trials=40,
                sampler=NSGA2Sampler(population_size=10, seed=42),
                storage=storage,
                study_name="laddered",
                load_if_exists=load,
                racing="rungs=2,full",
            )

        with pytest.raises(OptimizationError, match="fidelity"):
            run(str(path), load=True, fidelity="fidelity=lo,full")

        resumed = run(str(path), load=True)
        reference = run(
            str(tmp_path / ("ref.jsonl" if kind == "journal" else "ref.db"))
        )
        assert [
            (t.params, t.values, t.state) for t in resumed.study.trials
        ] == [(t.params, t.values, t.state) for t in reference.study.trials]
        assert _front_key(resumed.front()) == _front_key(reference.front())
