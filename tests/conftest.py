"""Shared fixtures.

Scenario construction costs ~1 s (resource synthesis + SAM model runs),
so full-year scenarios are session-scoped; fast tests use a one-month
scenario instead.
"""

from __future__ import annotations

import pytest

from repro.core.scenario import Scenario, build_scenario


@pytest.fixture(scope="session")
def houston() -> Scenario:
    """Full-year Houston scenario (ERCOT, wind-rich)."""
    return build_scenario("houston")


@pytest.fixture(scope="session")
def berkeley() -> Scenario:
    """Full-year Berkeley scenario (CAISO, solar-rich)."""
    return build_scenario("berkeley")


@pytest.fixture(scope="session")
def houston_month() -> Scenario:
    """One-month Houston scenario for fast unit/integration tests."""
    return build_scenario("houston", n_hours=24 * 30)


@pytest.fixture(scope="session")
def berkeley_month() -> Scenario:
    """One-month Berkeley scenario for fast unit/integration tests."""
    return build_scenario("berkeley", n_hours=24 * 30)
