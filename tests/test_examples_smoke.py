"""Smoke test: every ``examples/*.py`` runs to completion.

Examples are written against full-year scenarios (~15 s each); to keep
the suite fast the scenario horizon is capped by patching
``build_scenario`` *before* importing each example module — the examples
bind the name at import time (``from repro import build_scenario``), so
the patched reference is what they call.  Everything else runs exactly
as a user would run it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

import repro
import repro.core
import repro.core.ensemble
import repro.core.multiyear
import repro.core.scenario

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: smoke horizon: one month keeps seasonal structure without year cost
CAP_HOURS = 24 * 30

_real_build_scenario = repro.core.scenario.build_scenario


def _capped_build_scenario(location, year_label=2024, n_hours=8_760, **kwargs):
    return _real_build_scenario(
        location, year_label=year_label, n_hours=min(n_hours, CAP_HOURS), **kwargs
    )


@pytest.fixture
def capped_scenarios(monkeypatch):
    for module in (
        repro,
        repro.core,
        repro.core.scenario,
        repro.core.multiyear,
        repro.core.ensemble,
    ):
        monkeypatch.setattr(module, "build_scenario", _capped_build_scenario)


def test_all_examples_are_covered():
    assert EXAMPLES, "examples/ directory is empty?"
    assert {p.name for p in EXAMPLES} >= {
        "quickstart.py",
        "resumable_search.py",
        "ensemble_study.py",
    }


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_to_completion(example, capped_scenarios, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)  # examples that write artifacts stay sandboxed
    name = f"_example_{example.stem}"
    spec = importlib.util.spec_from_file_location(name, example)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setitem(sys.modules, name, module)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{example.name} has no main()"
    module.main()
