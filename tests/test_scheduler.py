"""Carbon-aware batch scheduling (repro.cosim.scheduler)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cosim import Actor, ConstantSignal, Microgrid, TraceSignal
from repro.cosim.scheduler import (
    BatchJob,
    CarbonAwareBatchScheduler,
    FlexibleLoad,
    run_at_release_schedule,
)
from repro.exceptions import ConfigurationError
from repro.timeseries import TimeSeries

HOUR = 3600.0


def ci_signal(values):
    return TraceSignal(TimeSeries(np.asarray(values, float), step_s=HOUR), wrap=True)


def microgrid_with(flex):
    return Microgrid(actors=[flex, Actor("gen", ConstantSignal(0.0))])


def drive(scheduler, microgrid, hours):
    served = []
    for i in range(hours):
        scheduler.on_step(microgrid, i * HOUR, HOUR)
        served.append(microgrid.step(i * HOUR, HOUR).consumption_w)
    return np.array(served)


class TestBatchJob:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchJob("j", energy_wh=0.0, release_hour=0, deadline_hour=4, max_power_w=10)
        with pytest.raises(ConfigurationError):
            BatchJob("j", energy_wh=10, release_hour=4, deadline_hour=2, max_power_w=10)
        with pytest.raises(ConfigurationError):
            # 100 Wh in a 2 h window at 10 W max → infeasible.
            BatchJob("j", energy_wh=100, release_hour=0, deadline_hour=2, max_power_w=10)

    def test_urgency_floor_rises_as_deadline_nears(self):
        job = BatchJob("j", energy_wh=40.0, release_hour=0, deadline_hour=8, max_power_w=10.0)
        early = job.urgency_power_w(0.0)   # 8 h slack for 4 h of work
        late = job.urgency_power_w(5.0)    # 3 h slack for 4 h of work → must run
        assert late > early
        assert late == pytest.approx(10.0, abs=1e-6) or late > 9.0

    def test_not_urgent_before_release(self):
        job = BatchJob("j", energy_wh=10.0, release_hour=5, deadline_hour=10, max_power_w=10.0)
        assert job.urgency_power_w(2.0) == 0.0


class TestScheduler:
    def test_jobs_complete_by_deadline_under_dirty_grid(self):
        """Even with always-dirty power, the EDF floor finishes every job."""
        flex = FlexibleLoad()
        jobs = [
            BatchJob("a", energy_wh=30_000.0, release_hour=0, deadline_hour=10,
                     max_power_w=5_000.0),
            BatchJob("b", energy_wh=20_000.0, release_hour=4, deadline_hour=12,
                     max_power_w=5_000.0),
        ]
        sched = CarbonAwareBatchScheduler(flex, jobs, ci_signal([900.0] * 24),
                                          ci_threshold_g_per_kwh=100.0)
        mg = microgrid_with(flex)
        drive(sched, mg, 14)
        assert sched.all_finished()
        assert not sched.missed_deadlines(14.0)

    def test_runs_eagerly_under_clean_grid(self):
        flex = FlexibleLoad()
        jobs = [BatchJob("a", energy_wh=10_000.0, release_hour=0, deadline_hour=24,
                         max_power_w=5_000.0)]
        sched = CarbonAwareBatchScheduler(flex, jobs, ci_signal([50.0] * 24),
                                          ci_threshold_g_per_kwh=100.0)
        mg = microgrid_with(flex)
        served = drive(sched, mg, 24)
        # Clean from hour 0 → job done in the first 2 hours at max power.
        assert served[0] == pytest.approx(5_000.0)
        assert served[1] == pytest.approx(5_000.0)
        assert served[2] == 0.0

    def test_waits_for_clean_window(self):
        """Dirty morning, clean afternoon: the job shifts to the afternoon."""
        ci = [800.0] * 12 + [50.0] * 12
        flex = FlexibleLoad()
        jobs = [BatchJob("a", energy_wh=10_000.0, release_hour=0, deadline_hour=24,
                         max_power_w=5_000.0)]
        sched = CarbonAwareBatchScheduler(flex, jobs, ci_signal(ci),
                                          ci_threshold_g_per_kwh=100.0)
        mg = microgrid_with(flex)
        served = drive(sched, mg, 24)
        assert served[:10].sum() == pytest.approx(0.0)  # waits (no urgency yet)
        assert served[12:].sum() > 0.0
        assert sched.all_finished()

    def test_carbon_aware_beats_run_at_release(self):
        """The §4.3 claim: shifting into clean hours cuts attributed CO2."""
        ci = np.array(([700.0] * 12 + [80.0] * 12) * 3, dtype=float)
        def make_jobs():
            return [
                BatchJob(f"j{k}", energy_wh=15_000.0, release_hour=2 + 12 * k,
                         deadline_hour=2 + 12 * k + 30, max_power_w=5_000.0)
                for k in range(3)
            ]

        flex = FlexibleLoad()
        sched = CarbonAwareBatchScheduler(flex, make_jobs(), ci_signal(ci),
                                          ci_threshold_g_per_kwh=150.0)
        mg = microgrid_with(flex)
        drive(sched, mg, len(ci))
        assert sched.all_finished()

        naive_kg = run_at_release_schedule(make_jobs(), ci)
        assert sched.emissions_proxy_kg < 0.6 * naive_kg

    def test_energy_conservation(self):
        flex = FlexibleLoad()
        jobs = [BatchJob("a", energy_wh=12_345.0, release_hour=0, deadline_hour=20,
                         max_power_w=2_000.0)]
        sched = CarbonAwareBatchScheduler(flex, jobs, ci_signal([50.0] * 24),
                                          ci_threshold_g_per_kwh=100.0)
        mg = microgrid_with(flex)
        served = drive(sched, mg, 24)
        assert served.sum() == pytest.approx(12_345.0, rel=1e-9)
        assert sched.scheduled_energy_wh == pytest.approx(12_345.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CarbonAwareBatchScheduler(FlexibleLoad(), [], ConstantSignal(0.0), -1.0)


@given(
    energy_kwh=st.floats(min_value=1.0, max_value=40.0),
    window_h=st.integers(min_value=10, max_value=48),
    release=st.integers(min_value=0, max_value=12),
    dirty_hours=st.integers(min_value=0, max_value=48),
)
@settings(max_examples=60, deadline=None)
def test_property_deadlines_always_met(energy_kwh, window_h, release, dirty_hours):
    """For any feasible job and any CI pattern, the deadline is met."""
    max_power = 5_000.0
    energy_wh = min(energy_kwh * 1_000.0, max_power * window_h)
    job = BatchJob("p", energy_wh=energy_wh, release_hour=release,
                   deadline_hour=release + window_h, max_power_w=max_power)
    ci = np.array([900.0] * dirty_hours + [50.0] * 96)
    flex = FlexibleLoad()
    sched = CarbonAwareBatchScheduler(flex, [job], ci_signal(ci), 100.0)
    mg = microgrid_with(flex)
    for i in range(release + window_h + 1):
        sched.on_step(mg, i * HOUR, HOUR)
        mg.step(i * HOUR, HOUR)
    assert job.finished
