"""StackedStorage: battery + long-duration tier composition."""

import pytest

from repro.cosim import (
    Actor,
    CLCBattery,
    ConstantSignal,
    IdealBattery,
    LongDurationStorage,
    Microgrid,
    StackedStorage,
)
from repro.exceptions import ConfigurationError

HOUR = 3600.0


def stack(batt_wh=1_000.0, ldes_wh=10_000.0):
    battery = IdealBattery(capacity_wh=batt_wh, initial_soc=0.0)
    ldes = LongDurationStorage(
        capacity_wh=ldes_wh, charge_power_w=500.0, discharge_power_w=500.0,
        eta_charge=1.0, eta_discharge=1.0, initial_soc=0.0,
    )
    return StackedStorage([battery, ldes]), battery, ldes


class TestDispatchOrder:
    def test_charge_fills_first_tier_first(self):
        s, battery, ldes = stack()
        s.update(800.0, HOUR)
        assert battery.energy_wh == pytest.approx(800.0)
        assert ldes.energy_wh == 0.0

    def test_charge_overflows_to_second_tier(self):
        s, battery, ldes = stack(batt_wh=1_000.0)
        accepted = s.update(1_400.0, HOUR)
        assert battery.energy_wh == pytest.approx(1_000.0)
        assert ldes.energy_wh == pytest.approx(400.0)
        assert accepted == pytest.approx(1_400.0)

    def test_second_tier_power_limit_respected(self):
        s, battery, ldes = stack(batt_wh=1_000.0)
        accepted = s.update(5_000.0, HOUR)
        # battery takes 1000, LDES capped at 500 W.
        assert accepted == pytest.approx(1_500.0)

    def test_discharge_drains_first_tier_first(self):
        s, battery, ldes = stack()
        s.update(1_400.0, HOUR)  # battery 1000, ldes 400
        delivered = -s.update(-600.0, HOUR)
        assert delivered == pytest.approx(600.0)
        assert battery.energy_wh == pytest.approx(400.0)
        assert ldes.energy_wh == pytest.approx(400.0)

    def test_discharge_cascades(self):
        s, battery, ldes = stack()
        s.update(1_400.0, HOUR)
        delivered = -s.update(-1_300.0, HOUR)
        # battery gives 1000, LDES gives 300 (within its 500 W limit)
        assert delivered == pytest.approx(1_300.0)
        assert ldes.energy_wh == pytest.approx(100.0)


class TestAggregates:
    def test_capacity_and_soc(self):
        s, battery, ldes = stack(batt_wh=1_000.0, ldes_wh=9_000.0)
        assert s.capacity_wh == pytest.approx(10_000.0)
        s.update(2_000.0, HOUR)  # 1000 battery (full) + 500 LDES (limit)
        assert s.energy_wh == pytest.approx(1_500.0)
        assert s.soc() == pytest.approx(0.15)

    def test_reset(self):
        s, battery, ldes = stack()
        s.update(1_400.0, HOUR)
        s.reset()
        assert s.energy_wh == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            StackedStorage([])


class TestInMicrogrid:
    def test_microgrid_balance_with_stack(self):
        """The stack plugs into a microgrid without policy changes."""
        s, _, _ = stack()
        mg = Microgrid(
            actors=[
                Actor("gen", ConstantSignal(2_000.0)),
                Actor("load", ConstantSignal(1_000.0), is_consumer=True),
            ],
            storage=s,
        )
        r = mg.step(0.0, HOUR)
        # 1000 surplus → battery absorbs 1000 (first tier headroom).
        assert r.storage_charge_w == pytest.approx(1_000.0)
        assert r.grid_export_w == pytest.approx(0.0)

    def test_long_lull_served_by_ldes(self):
        """Battery covers the first hour of a lull, LDES the long tail —
        the §3.3 hydrogen/pumped-hydro use case."""
        battery = CLCBattery(capacity_wh=2_000.0, initial_soc=0.95)
        ldes = LongDurationStorage(
            capacity_wh=50_000.0, charge_power_w=1_000.0, discharge_power_w=1_000.0,
            initial_soc=0.9,
        )
        mg = Microgrid(
            actors=[Actor("load", ConstantSignal(1_000.0), is_consumer=True)],
            storage=StackedStorage([battery, ldes]),
        )
        imports = [mg.step(i * HOUR, HOUR).grid_import_w for i in range(24)]
        # The stack keeps the site off-grid for many hours.
        assert sum(1 for p in imports if p < 1e-6) >= 20
