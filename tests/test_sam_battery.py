"""Battery models: C/L/C dynamics, rainflow counting, degradation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.sam.batterymodels.clc import (
    CLCParameters,
    charge_limit_w,
    clc_step,
    clc_step_arrays,
    initial_state,
    roundtrip_efficiency,
)
from repro.sam.batterymodels.degradation import DegradationModel, DegradationParameters
from repro.sam.batterymodels.rainflow import (
    count_equivalent_full_cycles,
    equivalent_full_cycles_from_soc,
    rainflow_cycles,
)

HOUR = 3600.0


def params(capacity_kwh=100.0, **kw):
    return CLCParameters(capacity_wh=capacity_kwh * 1000.0, **kw)


class TestCLCParameters:
    def test_usable_capacity(self):
        p = params(100.0, soc_min=0.1, soc_max=0.9, taper_soc_threshold=0.8)
        assert p.usable_capacity_wh == pytest.approx(80_000.0)

    def test_power_limits(self):
        p = params(100.0, max_charge_c_rate=0.5)
        assert p.max_charge_power_w == pytest.approx(50_000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            params(-1.0)
        with pytest.raises(ConfigurationError):
            params(1.0, eta_charge=0.0)
        with pytest.raises(ConfigurationError):
            params(1.0, soc_min=0.9, soc_max=0.5)
        with pytest.raises(ConfigurationError):
            params(1.0, taper_soc_threshold=0.99)  # above soc_max
        with pytest.raises(ConfigurationError):
            params(1.0, self_discharge_per_hour=0.5)

    def test_roundtrip_efficiency(self):
        p = params(1.0, eta_charge=0.9, eta_discharge=0.9)
        assert roundtrip_efficiency(p) == pytest.approx(0.81)


class TestCLCStep:
    def test_charge_increases_energy_with_efficiency(self):
        p = params(100.0)
        e0 = 50_000.0
        accepted, e1 = clc_step(p, e0, 10_000.0, HOUR)
        assert accepted == pytest.approx(10_000.0)
        assert e1 == pytest.approx(e0 + 10_000.0 * p.eta_charge, rel=1e-3)

    def test_discharge_drains_more_than_delivered(self):
        p = params(100.0)
        e0 = 50_000.0
        accepted, e1 = clc_step(p, e0, -10_000.0, HOUR)
        assert accepted == pytest.approx(-10_000.0)
        assert e0 - e1 == pytest.approx(10_000.0 / p.eta_discharge, rel=1e-3)

    def test_charge_rate_limit(self):
        p = params(100.0, max_charge_c_rate=0.25)
        accepted, _ = clc_step(p, 20_000.0, 1e9, HOUR)
        assert accepted == pytest.approx(25_000.0, rel=1e-6)

    def test_discharge_rate_limit(self):
        p = params(100.0, max_discharge_c_rate=0.25)
        accepted, _ = clc_step(p, 80_000.0, -1e9, HOUR)
        assert accepted == pytest.approx(-25_000.0, rel=1e-6)

    def test_cv_taper_slows_charging_near_full(self):
        p = params(100.0, taper_soc_threshold=0.8, soc_max=0.95)
        low_soc_accept, _ = clc_step(p, 40_000.0, 1e9, HOUR)
        high_soc_accept, _ = clc_step(p, 90_000.0, 1e9, HOUR)
        assert high_soc_accept < 0.5 * low_soc_accept

    def test_soc_window_respected(self):
        p = params(100.0, soc_min=0.1, soc_max=0.9)
        # Cannot discharge below soc_min.
        accepted, e1 = clc_step(p, 11_000.0, -1e9, HOUR)
        assert e1 >= 10_000.0 - 1e-6
        # Cannot charge above soc_max.
        accepted, e1 = clc_step(p, 89_000.0, 1e9, HOUR)
        assert e1 <= 90_000.0 + 1e-6

    def test_empty_battery_delivers_nothing(self):
        p = params(100.0, soc_min=0.05)
        accepted, _ = clc_step(p, 5_000.0, -1e6, HOUR)
        assert accepted == pytest.approx(0.0, abs=1.0)

    def test_zero_capacity_noop(self):
        p = CLCParameters(capacity_wh=0.0)
        accepted, e1 = clc_step(p, 0.0, 1e6, HOUR)
        assert accepted == 0.0 and e1 == 0.0

    def test_self_discharge(self):
        p = params(100.0, self_discharge_per_hour=1e-3)
        _, e1 = clc_step(p, 50_000.0, 0.0, HOUR)
        assert e1 == pytest.approx(50_000.0 * (1 - 1e-3), rel=1e-9)

    def test_subhourly_step_scales(self):
        # self-discharge compounds differently across step splits; exact
        # split-invariance holds for the lossless-idle case.
        p = params(100.0, self_discharge_per_hour=0.0)
        _, e_hour = clc_step(p, 50_000.0, 10_000.0, HOUR)
        e = 50_000.0
        for _ in range(4):
            _, e = clc_step(p, e, 10_000.0, HOUR / 4)
        assert e == pytest.approx(e_hour, rel=1e-6)


class TestCLCVectorized:
    def test_vector_matches_scalar(self):
        """clc_step over a vector must equal elementwise scalar calls."""
        p = params(100.0)
        energies = np.array([10_000.0, 50_000.0, 90_000.0])
        requests = np.array([5_000.0, -20_000.0, 70_000.0])
        acc_vec, e_vec = clc_step(p, energies, requests, HOUR)
        for i in range(3):
            acc_s, e_s = clc_step(p, float(energies[i]), float(requests[i]), HOUR)
            assert acc_vec[i] == pytest.approx(acc_s)
            assert e_vec[i] == pytest.approx(e_s)

    def test_capacity_array_matches_scalar_params(self):
        """clc_step_arrays with per-element capacity ≡ per-capacity clc_step."""
        capacities = np.array([0.0, 50_000.0, 100_000.0])
        energies = capacities * 0.5
        requests = np.array([10_000.0, 10_000.0, -30_000.0])
        acc_vec, e_vec = clc_step_arrays(capacities, energies, requests, HOUR)
        for i, cap in enumerate(capacities):
            if cap == 0.0:
                assert acc_vec[i] == 0.0
                continue
            p = CLCParameters(capacity_wh=float(cap))
            acc_s, e_s = clc_step(p, float(energies[i]), float(requests[i]), HOUR)
            assert acc_vec[i] == pytest.approx(acc_s)
            assert e_vec[i] == pytest.approx(e_s)

    def test_initial_state_vector(self):
        p = params(10.0)
        state = initial_state(p, soc=0.5, n=4)
        assert state.energy_wh.shape == (4,)
        assert np.allclose(state.soc(p), 0.5)

    def test_charge_limit_taper_shape(self):
        p = params(100.0, taper_soc_threshold=0.8, soc_max=0.95)
        e = np.array([0.0, 80_000.0, 95_000.0])
        limits = charge_limit_w(p, e)
        assert limits[0] == pytest.approx(p.max_charge_power_w)
        assert limits[2] == pytest.approx(0.0, abs=1.0)
        assert limits[0] > limits[1] > limits[2] or limits[1] == limits[0]


class TestRainflow:
    def test_single_full_cycle(self):
        # 0.5 → 1.0 → 0.0 → 0.5: rainflow sees half cycles of the big range.
        soc = np.array([0.2, 0.8, 0.2, 0.8])
        cycles = rainflow_cycles(soc)
        total = sum(c.count for c in cycles)
        assert total == pytest.approx(1.5)
        assert max(c.depth for c in cycles) == pytest.approx(0.6)

    def test_nested_cycle_extracted(self):
        # A small excursion nested in a large one → one full small cycle.
        soc = np.array([0.1, 0.9, 0.5, 0.7, 0.1])
        cycles = rainflow_cycles(soc)
        full = [c for c in cycles if c.count == 1.0]
        assert len(full) == 1
        assert full[0].depth == pytest.approx(0.2)

    def test_flat_series_no_cycles(self):
        assert rainflow_cycles(np.full(10, 0.5)) == []

    def test_monotone_series_one_half_cycle(self):
        cycles = rainflow_cycles(np.linspace(0.1, 0.9, 20))
        assert len(cycles) == 1
        assert cycles[0].count == 0.5
        assert cycles[0].depth == pytest.approx(0.8)

    def test_efc_throughput(self):
        assert count_equivalent_full_cycles(75_000.0, 7_500.0) == pytest.approx(10.0)
        assert count_equivalent_full_cycles(100.0, 0.0) == 0.0

    def test_efc_from_soc(self):
        soc = np.array([0.5, 1.0, 0.0, 1.0, 0.5])
        assert equivalent_full_cycles_from_soc(soc) == pytest.approx(1.5)


class TestDegradation:
    def test_calendar_sqrt_law(self):
        model = DegradationModel(DegradationParameters(k_calendar_per_sqrt_year=0.02))
        assert model.calendar_fade(4.0) == pytest.approx(0.04)

    def test_deep_cycling_ages_faster(self):
        model = DegradationModel()
        shallow = np.tile([0.45, 0.55], 500)
        deep = np.tile([0.05, 0.95], 500)
        assert model.cycle_fade_from_soc(deep) > model.cycle_fade_from_soc(shallow)

    def test_woehler_curve_monotone(self):
        p = DegradationParameters()
        assert p.cycles_to_failure(0.2) > p.cycles_to_failure(0.8)

    def test_remaining_capacity_floor(self):
        model = DegradationModel()
        huge = np.tile([0.0, 1.0], 100_000)
        assert model.remaining_capacity_fraction(huge, 50.0) == 0.0

    def test_lifetime_estimate_ordering(self):
        """Heavier cycling must shorten the estimated lifetime."""
        model = DegradationModel()
        light = np.tile([0.45, 0.55], 365)
        heavy = np.tile([0.1, 0.9], 365)
        assert model.expected_lifetime_years(heavy) < model.expected_lifetime_years(light)

    def test_idle_battery_calendar_limited(self):
        model = DegradationModel(DegradationParameters(k_calendar_per_sqrt_year=0.02))
        idle = np.full(100, 0.5)
        # EOL at fade 0.2 → √t = 10 → t = 100 years, clamped to max.
        assert model.expected_lifetime_years(idle, max_years=40.0) == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationParameters(eol_fade=0.0)
        with pytest.raises(ConfigurationError):
            DegradationParameters(cycles_to_failure_full_dod=-1.0)
        with pytest.raises(ConfigurationError):
            DegradationModel().calendar_fade(-1.0)


# ---------------------------------------------------------------------------
# Property-based invariants of the C/L/C model
# ---------------------------------------------------------------------------

soc_values = st.floats(min_value=0.05, max_value=0.95)
power_requests = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@given(soc=soc_values, request_w=power_requests)
@settings(max_examples=200)
def test_property_energy_stays_in_window(soc, request_w):
    """No request can push stored energy outside [0, soc_max·C]."""
    p = params(100.0)
    e0 = p.capacity_wh * soc
    _, e1 = clc_step(p, e0, request_w, HOUR)
    assert 0.0 <= e1 <= p.capacity_wh * p.soc_max + 1e-6


@given(soc=soc_values, request_w=power_requests)
@settings(max_examples=200)
def test_property_accepted_never_exceeds_request(soc, request_w):
    """|accepted| ≤ |requested| and same sign (or zero)."""
    p = params(100.0)
    e0 = p.capacity_wh * soc
    accepted, _ = clc_step(p, e0, request_w, HOUR)
    if request_w >= 0:
        assert 0.0 <= accepted <= request_w + 1e-9
    else:
        assert request_w - 1e-9 <= accepted <= 0.0


@given(soc=soc_values, request_w=power_requests)
@settings(max_examples=200)
def test_property_energy_conservation_with_losses(soc, request_w):
    """Energy bookkeeping: ΔE = η_c·P_chg·Δt − P_dis·Δt/η_d (− leakage)."""
    p = params(100.0, self_discharge_per_hour=0.0)
    e0 = p.capacity_wh * soc
    accepted, e1 = clc_step(p, e0, request_w, HOUR)
    if accepted >= 0:
        expected = e0 + accepted * p.eta_charge
    else:
        expected = e0 + accepted / p.eta_discharge
    assert e1 == pytest.approx(min(expected, p.capacity_wh * p.soc_max), rel=1e-9, abs=1e-6)


@given(
    socs=st.lists(soc_values, min_size=1, max_size=8),
    request_w=power_requests,
)
@settings(max_examples=100)
def test_property_vectorized_equals_scalar(socs, request_w):
    """The vector path is exactly the scalar path applied elementwise."""
    p = params(50.0)
    energies = np.array([p.capacity_wh * s for s in socs])
    acc_v, e_v = clc_step(p, energies, np.full(len(socs), request_w), HOUR)
    for i in range(len(socs)):
        acc_s, e_s = clc_step(p, float(energies[i]), request_w, HOUR)
        assert acc_v[i] == pytest.approx(acc_s, rel=1e-12, abs=1e-9)
        assert e_v[i] == pytest.approx(e_s, rel=1e-12, abs=1e-9)
