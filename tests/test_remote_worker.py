"""Cluster-scale search: coordinator + remote HTTP workers (DESIGN.md §13).

The distributed half of the pipelined dispatcher, end to end:

* **parity** — a study driven by a coordinator and remote workers over
  the HTTP lease protocol produces a Pareto front bit-identical to the
  single-process pipelined run at the same ``(seed, speculate)``,
  including racing (rung items leased remotely);
* **durability** — SIGKILL one of two remote workers mid-study: its
  leases expire, the coordinator re-dispatches the lost candidates to
  the survivor, and the study converges to the identical front with
  **no manual resume**, on journal and SQLite backends;
* the lease/worker HTTP verbs themselves (spec documents, grants,
  stale acks, validation errors).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.study_spec import StudySpec
from repro.service import RemoteWorkerClient, StudyService, front_csv
from repro.service.http import make_server

SRC = str(Path(__file__).resolve().parent.parent / "src")

SMALL = dict(sites=("houston",), n_hours=720, n_trials=20, population=10, seed=7)


def _http(url, method="GET", payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request) as response:
        body = response.read()
        kind = response.headers.get("Content-Type", "")
        return response.status, (json.loads(body) if "json" in kind else body.decode())


def _serve(service):
    """A serving (daemon-thread) HTTP server; caller shuts it down."""
    server = make_server(service)
    threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    ).start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def _reference_front(spec: StudySpec, name: str) -> str:
    """The single-process front for ``spec`` via the service worker loop."""
    service = StudyService("memory://")
    service.submit(spec, name)
    assert service.worker_loop() == 1
    return service.front(name)


class TestLeaseProtocolOverHttp:
    def test_spec_endpoint_hands_back_the_persisted_identity(self):
        service = StudyService("memory://")
        service.submit(StudySpec(remote_slots=2, **SMALL), "s1")
        server, base = _serve(service)
        try:
            status, doc = _http(f"{base}/studies/s1/spec")
        finally:
            server.shutdown()
            server.server_close()
        assert status == 200 and doc["name"] == "s1"
        rebuilt = StudySpec.from_metadata(doc["metadata"])
        assert rebuilt.seed == 7 and rebuilt.remote_slots == 2

    def test_lease_with_no_coordinator_grants_nothing(self):
        service = StudyService("memory://")
        server, base = _serve(service)
        try:
            status, grant = _http(
                f"{base}/lease", method="POST", payload={"worker": "w1"}
            )
            assert status == 200
            assert grant == {"study": None, "ttl_s": None, "items": []}
            # Results for a study nobody coordinates here are stale acks.
            service.submit(StudySpec(**SMALL), "s1")
            status, ack = _http(
                f"{base}/studies/s1/results",
                method="POST",
                payload={
                    "worker": "w1",
                    "results": [{"item": "trial-0", "tag": "ok", "value": [1.0, 2.0]}],
                },
            )
            assert status == 200 and ack == {"study": "s1", "accepted": 0, "stale": 1}
        finally:
            server.shutdown()
            server.server_close()

    def test_lease_and_results_validate_their_bodies(self):
        service = StudyService("memory://")
        service.submit(StudySpec(**SMALL), "s1")
        server, base = _serve(service)
        try:
            for path, payload in (
                ("/lease", {}),  # no worker id
                ("/studies/s1/results", {"worker": "w"}),  # no results list
                ("/studies/s1/results", {"results": []}),  # no worker id
            ):
                with pytest.raises(urllib.error.HTTPError) as err:
                    _http(f"{base}{path}", method="POST", payload=payload)
                assert err.value.code == 400
        finally:
            server.shutdown()
            server.server_close()


class TestRemoteParity:
    """Coordinator + in-thread HTTP workers == single-process front."""

    @pytest.mark.parametrize("speculate", [0, 2])
    def test_two_workers_front_is_bit_identical(self, speculate):
        pipeline = f"speculate={speculate}"
        reference = _reference_front(
            StudySpec(pipeline=pipeline, **SMALL), "ref"
        )

        service = StudyService("memory://")
        service.submit(
            StudySpec(remote_slots=2, lease_ttl=60.0, pipeline=pipeline, **SMALL),
            "dist",
        )
        server, base = _serve(service)
        coordinator = threading.Thread(target=service.worker_loop, daemon=True)
        coordinator.start()
        clients = [
            RemoteWorkerClient(base, f"w{i}", poll_s=0.05, lease_limit=2)
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=c.run, kwargs={"max_idle": 100}, daemon=True)
            for c in clients
        ]
        for t in threads:
            t.start()
        coordinator.join(timeout=240)
        try:
            assert not coordinator.is_alive(), "coordinator did not finish"
            doc = service.status("dist")
            assert doc["service"]["state"] == "done"
            assert doc["leases"]["completed"] == SMALL["n_trials"]
            assert service.front("dist") == reference
        finally:
            server.shutdown()
            server.server_close()

    def test_racing_rung_items_lease_remotely_and_match(self):
        config = dict(
            sites=("houston", "berkeley"),
            n_hours=720,
            n_trials=10,
            population=5,
            seed=7,
            racing="rungs=1,full",
            pipeline="speculate=0",
        )
        reference = _reference_front(StudySpec(**config), "ref")

        service = StudyService("memory://")
        service.submit(StudySpec(remote_slots=2, lease_ttl=60.0, **config), "dist")
        server, base = _serve(service)
        coordinator = threading.Thread(target=service.worker_loop, daemon=True)
        coordinator.start()
        client = RemoteWorkerClient(base, "w0", poll_s=0.05, lease_limit=4)
        worker = threading.Thread(
            target=client.run, kwargs={"max_idle": 100}, daemon=True
        )
        worker.start()
        coordinator.join(timeout=240)
        try:
            assert not coordinator.is_alive(), "coordinator did not finish"
            assert service.status("dist")["service"]["state"] == "done"
            assert service.front("dist") == reference
        finally:
            server.shutdown()
            server.server_close()


#: remote worker subprocess that SIGKILLs itself after acking its Nth
#: result — the next evaluation is leased but never acknowledged, the
#: exact in-flight loss lease reclaim exists for
KILL_REMOTE_WORKER = textwrap.dedent(
    """
    import os, signal, sys
    from repro.service.remote_worker import RemoteWorkerClient

    base, worker_id, kill_after = sys.argv[1], sys.argv[2], int(sys.argv[3])
    client = RemoteWorkerClient(base, worker_id, poll_s=0.1, lease_limit=2)
    if kill_after:
        original = client._result
        count = 0

        def killing_result(study, result):
            global count
            count += 1
            if count > kill_after:
                os.kill(os.getpid(), signal.SIGKILL)
            return original(study, result)

        client._result = killing_result
    client.run(max_idle=300)
    """
)


class TestKillARemoteWorker:
    @pytest.mark.parametrize("scheme", ["journal", "sqlite"])
    def test_sigkilled_worker_reclaims_to_identical_front_no_resume(
        self, tmp_path, scheme
    ):
        suffix = "jsonl" if scheme == "journal" else "db"
        svc_store = f"{scheme}://{tmp_path}/svc.{suffix}"
        reference_store = f"{tmp_path}/ref.{suffix}"

        # The single-process pipelined reference at the same (seed, speculate).
        assert (
            main(
                ["study", "run", "--storage", reference_store, "--site", "houston",
                 "--trials", "20", "--population", "10", "--seed", "7",
                 "--set", "scenario.n_hours=720", "--pipeline"]
            )
            == 0
        )

        service = StudyService(svc_store)
        server, base = _serve(service)
        coordinator = threading.Thread(target=service.worker_loop, daemon=True)
        procs = []
        try:
            # Short TTL so the dead worker's in-flight lease expires fast.
            _http(
                f"{base}/studies",
                method="POST",
                payload={
                    **SMALL, "sites": "houston", "name": "dist",
                    "remote_slots": 4, "lease_ttl": 2.0,
                },
            )
            coordinator.start()
            env = {**os.environ, "PYTHONPATH": SRC}
            # doomed acks 3 results then SIGKILLs itself mid-batch;
            # the survivor carries the study home alone.
            for worker_id, kill_after in (("doomed", 3), ("survivor", 0)):
                procs.append(
                    subprocess.Popen(
                        [sys.executable, "-c", KILL_REMOTE_WORKER,
                         base, worker_id, str(kill_after)],
                        env=env,
                    )
                )
            doomed, survivor = procs
            assert doomed.wait(timeout=240) == -signal.SIGKILL
            coordinator.join(timeout=240)
            assert not coordinator.is_alive(), "coordinator did not finish"

            doc = service.status("dist")
            assert doc["service"]["state"] == "done"
            assert doc["leases"]["completed"] == 20
            assert doc["leases"]["reclaimed"] >= 1  # the SIGKILL left a lease to reap
            assert "doomed" in doc["leases"]["workers"]
            final_front = service.front("dist")
        finally:
            server.shutdown()
            server.server_close()
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

        from repro.blackbox import storage_from_url

        reference = storage_from_url(reference_store).load_study("houston-blackbox")
        assert final_front == front_csv(reference)
