"""Cross-validation: the vectorized batch evaluator vs the co-simulator.

The batch evaluator (repro.core.fastsim) and the co-simulation path
(repro.core.evaluator → repro.cosim) implement the same physics through
different code paths; they must agree to float tolerance.  This is the
load-bearing test for trusting the exhaustive sweeps.
"""

import numpy as np
import pytest

from repro.core.composition import MicrogridComposition
from repro.core.dispatch import POLICY_NAMES, make_policy
from repro.core.evaluator import CompositionEvaluator
from repro.core.fastsim import BatchEvaluator

COMPOSITIONS = [
    MicrogridComposition(0, 0.0, 0),                    # grid only
    MicrogridComposition.from_mw(12.0, 0.0, 7.5),       # wind + small battery
    MicrogridComposition.from_mw(0.0, 12.0, 37.5),      # solar + battery
    MicrogridComposition.from_mw(9.0, 8.0, 22.5),       # mixed
    MicrogridComposition.from_mw(30.0, 40.0, 60.0),     # max build-out
    MicrogridComposition.from_mw(6.0, 4.0, 0.0),        # no storage
]


@pytest.fixture(scope="module")
def evaluators(houston_month):
    return BatchEvaluator(houston_month), CompositionEvaluator(houston_month)


@pytest.mark.parametrize("comp", COMPOSITIONS, ids=lambda c: c.label())
def test_paths_agree(evaluators, comp):
    batch_eval, cosim_eval = evaluators
    fast = batch_eval.evaluate_one(comp).metrics
    slow = cosim_eval.evaluate(comp).metrics

    assert fast.grid_import_wh == pytest.approx(slow.grid_import_wh, rel=1e-9, abs=1e-3)
    assert fast.grid_export_wh == pytest.approx(slow.grid_export_wh, rel=1e-9, abs=1e-3)
    assert fast.battery_charge_wh == pytest.approx(slow.battery_charge_wh, rel=1e-9, abs=1e-3)
    assert fast.battery_discharge_wh == pytest.approx(
        slow.battery_discharge_wh, rel=1e-9, abs=1e-3
    )
    assert fast.operational_emissions_kg == pytest.approx(
        slow.operational_emissions_kg, rel=1e-9, abs=1e-6
    )
    assert fast.coverage == pytest.approx(slow.coverage, abs=1e-9)
    assert fast.electricity_cost_usd == pytest.approx(
        slow.electricity_cost_usd, rel=1e-9, abs=1e-6
    )
    if fast.battery_cycles is None:
        assert slow.battery_cycles is None
    else:
        assert fast.battery_cycles == pytest.approx(slow.battery_cycles, rel=1e-9)


def test_monitor_consistency(houston_month):
    """Per-step flows recorded by the co-sim monitor sum to the aggregates."""
    cosim_eval = CompositionEvaluator(houston_month)
    run = cosim_eval.run(MicrogridComposition.from_mw(9.0, 8.0, 22.5))
    mon = run.monitor
    dt_h = houston_month.step_s / 3600.0
    assert mon.series("grid_import_w").sum() * dt_h == pytest.approx(
        run.grid.import_energy_wh, rel=1e-12
    )
    assert len(mon) == houston_month.n_steps


def test_full_year_agreement_single_composition(houston):
    """One full-year check (slower, hence single composition)."""
    comp = MicrogridComposition.from_mw(12.0, 12.0, 52.5)
    fast = BatchEvaluator(houston).evaluate_one(comp).metrics
    slow = CompositionEvaluator(houston).evaluate(comp).metrics
    assert fast.operational_emissions_kg == pytest.approx(
        slow.operational_emissions_kg, rel=1e-9
    )
    assert fast.coverage == pytest.approx(slow.coverage, abs=1e-12)


# -- vectorized policies vs their co-simulated twins (DESIGN.md §5) ----------

#: one storage-exercising composition keeps the cosim runs affordable
POLICY_COMP = MicrogridComposition.from_mw(9.0, 8.0, 22.5)


def _assert_policy_paths_agree(scenario, policy_name, comp):
    policy = make_policy(policy_name, [scenario])
    fast = BatchEvaluator(scenario, policy=policy).evaluate_one(comp).metrics
    slow = (
        CompositionEvaluator(scenario, policy=policy.cosim_twin(scenario))
        .evaluate(comp)
        .metrics
    )
    assert fast.grid_import_wh == pytest.approx(slow.grid_import_wh, rel=1e-9, abs=1e-3)
    assert fast.grid_export_wh == pytest.approx(slow.grid_export_wh, rel=1e-9, abs=1e-3)
    assert fast.battery_charge_wh == pytest.approx(
        slow.battery_charge_wh, rel=1e-9, abs=1e-3
    )
    assert fast.battery_discharge_wh == pytest.approx(
        slow.battery_discharge_wh, rel=1e-9, abs=1e-3
    )
    assert fast.unserved_energy_wh == pytest.approx(
        slow.unserved_energy_wh, rel=1e-9, abs=1e-3
    )
    assert fast.operational_emissions_kg == pytest.approx(
        slow.operational_emissions_kg, rel=1e-9, abs=1e-6
    )
    assert fast.electricity_cost_usd == pytest.approx(
        slow.electricity_cost_usd, rel=1e-9, abs=1e-6
    )
    assert fast.coverage == pytest.approx(slow.coverage, abs=1e-9)
    assert fast.islanded_fraction == pytest.approx(slow.islanded_fraction, abs=1e-12)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@pytest.mark.parametrize("site", ["houston", "berkeley"])
def test_policy_twins_agree(policy_name, site, houston_month, berkeley_month):
    """Every vectorized policy matches its scalar cosim twin, both sites."""
    scenario = houston_month if site == "houston" else berkeley_month
    _assert_policy_paths_agree(scenario, policy_name, POLICY_COMP)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@pytest.mark.parametrize("site", ["houston", "berkeley"])
def test_policy_twins_agree_no_battery(policy_name, site, houston_month, berkeley_month):
    """Twin agreement must also hold when there is no storage to dispatch."""
    scenario = houston_month if site == "houston" else berkeley_month
    _assert_policy_paths_agree(scenario, policy_name, MicrogridComposition.from_mw(6.0, 4.0, 0.0))


@pytest.mark.tier2
@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@pytest.mark.parametrize("site", ["houston", "berkeley"])
def test_policy_twins_agree_full_year(policy_name, site, houston, berkeley):
    """Full-year twin agreement on both paper scenarios (slow tier)."""
    scenario = houston if site == "houston" else berkeley
    _assert_policy_paths_agree(scenario, policy_name, POLICY_COMP)
